// Package atomicmix generalizes atomicpad's access rule from annotated
// counter blocks to every struct in the program: a field that is
// updated through sync/atomic anywhere must be accessed through
// sync/atomic everywhere. A plain load may be torn or hoisted out of a
// loop by the compiler, a plain store silently discards concurrent
// atomic increments, and the race detector only catches the mix if a
// test happens to schedule both sides — the analyzer catches it from
// the source alone.
//
// The one legitimate exception is the single-owner window: before a
// value is published (constructors, init) or while the owner has
// quiesced every writer (Reset/Clear methods), plain access is both
// safe and idiomatic. Accesses inside a function named init, inside a
// package function that returns the owning struct type, or inside a
// method of the owning struct whose name starts with Reset/Clear (any
// case) are therefore exempt. Anything else that is intentionally
// unsynchronized — a stats snapshot that tolerates tearing, a test
// hook — carries //lint:ignore atomicmix <reason>.
//
// Mechanics: the per-package pass records every `&x.f` passed directly
// to a sync/atomic function as an object fact on the field; the
// whole-program pass then sweeps every package for plain accesses to
// exactly those fields, so a field atomically updated in one package
// and plainly read in another is caught regardless of analysis order.
package atomicmix

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"maskedspgemm/internal/lint"
)

// Analyzer is the atomicmix pass.
var Analyzer = &lint.Analyzer{
	Name:       "atomicmix",
	Doc:        "a struct field updated via sync/atomic must not also be accessed plainly outside init/reset windows",
	Run:        run,
	RunProgram: runProgram,
}

// AtomicUseFact marks a struct field as sync/atomic-accessed. Exported
// by the defining pass, consumed program-wide.
type AtomicUseFact struct {
	// Owner and Field name the struct and field for diagnostics.
	Owner, Field string
	// Pos holds the atomic access sites (first is used in messages).
	Pos []token.Pos
}

// run records every field whose address is passed to a sync/atomic
// function.
func run(pass *lint.Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isSyncAtomicCall(pass.TypesInfo, call) {
				return true
			}
			for _, arg := range call.Args {
				ue, ok := ast.Unparen(arg).(*ast.UnaryExpr)
				if !ok || ue.Op != token.AND {
					continue
				}
				sel, ok := ast.Unparen(ue.X).(*ast.SelectorExpr)
				if !ok {
					continue
				}
				field, owner := fieldOf(pass.TypesInfo, sel)
				if field == nil || owner == nil {
					continue
				}
				fact, _ := pass.ObjectFact(field).(*AtomicUseFact)
				if fact == nil {
					fact = &AtomicUseFact{Owner: owner.Obj().Name(), Field: field.Name()}
				}
				fact.Pos = append(fact.Pos, sel.Pos())
				pass.ExportObjectFact(field, fact)
			}
			return true
		})
	}
	return nil
}

// runProgram sweeps every package for plain accesses to the fields the
// per-package passes marked atomic.
func runProgram(pass *lint.ProgramPass) error {
	atomicFields := map[*types.Var]*AtomicUseFact{}
	for obj, f := range pass.AllObjectFacts() {
		if v, ok := obj.(*types.Var); ok {
			if fact, ok := f.(*AtomicUseFact); ok {
				atomicFields[v] = fact
			}
		}
	}
	if len(atomicFields) == 0 {
		return nil
	}
	type finding struct {
		pos   token.Pos
		fact  *AtomicUseFact
		write bool
	}
	var findings []finding
	for _, pkg := range pass.Prog.Packages {
		for _, file := range pkg.Files {
			// allowed marks selector nodes that are themselves the atomic
			// access (&x.f handed to sync/atomic).
			allowed := map[ast.Node]bool{}
			ast.Inspect(file, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok || !isSyncAtomicCall(pkg.Info, call) {
					return true
				}
				for _, arg := range call.Args {
					if ue, ok := ast.Unparen(arg).(*ast.UnaryExpr); ok && ue.Op == token.AND {
						if sel, ok := ast.Unparen(ue.X).(*ast.SelectorExpr); ok {
							allowed[sel] = true
						}
					}
				}
				return true
			})
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					sel, ok := n.(*ast.SelectorExpr)
					if !ok || allowed[sel] {
						return true
					}
					field, owner := fieldOf(pkg.Info, sel)
					if field == nil {
						return true
					}
					fact, ok := atomicFields[field]
					if !ok {
						return true
					}
					if inOwnerWindow(pkg.Info, fd, owner) {
						return true
					}
					findings = append(findings, finding{pos: sel.Sel.Pos(), fact: fact})
					return true
				})
			}
		}
	}
	sort.Slice(findings, func(i, j int) bool { return findings[i].pos < findings[j].pos })
	for _, f := range findings {
		first := pass.Prog.Fset.Position(f.fact.Pos[0])
		pass.Reportf(f.pos,
			"field %s of %s is updated via sync/atomic (%s:%d) but accessed plainly here; use atomic loads/stores or confine the access to a constructor, init, or Reset/Clear method",
			f.fact.Field, f.fact.Owner, base(first.Filename), first.Line)
	}
	return nil
}

// fieldOf resolves sel to a struct field access, returning the field's
// canonical object and the owning named type (nil, nil otherwise).
func fieldOf(info *types.Info, sel *ast.SelectorExpr) (*types.Var, *types.Named) {
	s, ok := info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return nil, nil
	}
	recv := s.Recv()
	if p, ok := recv.(*types.Pointer); ok {
		recv = p.Elem()
	}
	named, ok := recv.(*types.Named)
	if !ok {
		return nil, nil
	}
	f, ok := s.Obj().(*types.Var)
	if !ok {
		return nil, nil
	}
	return f.Origin(), named
}

// inOwnerWindow reports whether fd is a single-owner window for the
// named struct: init, a constructor returning the type, or a
// Reset/Clear method on it.
func inOwnerWindow(info *types.Info, fd *ast.FuncDecl, owner *types.Named) bool {
	if owner == nil {
		return false
	}
	name := fd.Name.Name
	if fd.Recv == nil {
		if name == "init" {
			return true
		}
		// Constructor: any result is the owner type or a pointer to it.
		fn, ok := info.Defs[fd.Name].(*types.Func)
		if !ok {
			return false
		}
		sig := fn.Type().(*types.Signature)
		for i := 0; i < sig.Results().Len(); i++ {
			t := sig.Results().At(i).Type()
			if p, ok := t.(*types.Pointer); ok {
				t = p.Elem()
			}
			if n, ok := t.(*types.Named); ok && n.Obj() == owner.Obj() {
				return true
			}
		}
		return false
	}
	// Method: must be on the owner and named like a quiesced-writer
	// window.
	lower := strings.ToLower(name)
	if !strings.HasPrefix(lower, "reset") && !strings.HasPrefix(lower, "clear") {
		return false
	}
	fn, ok := info.Defs[fd.Name].(*types.Func)
	if !ok {
		return false
	}
	recv := fn.Type().(*types.Signature).Recv().Type()
	if p, ok := recv.(*types.Pointer); ok {
		recv = p.Elem()
	}
	n, ok := recv.(*types.Named)
	return ok && n.Obj() == owner.Obj()
}

// isSyncAtomicCall reports whether call targets a sync/atomic package
// function.
func isSyncAtomicCall(info *types.Info, call *ast.CallExpr) bool {
	fun, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	obj := info.Uses[fun.Sel]
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "sync/atomic"
}

func base(path string) string {
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		return path[i+1:]
	}
	return path
}
