package atomicmix_test

import (
	"testing"

	"maskedspgemm/internal/lint/atomicmix"
	"maskedspgemm/internal/lint/linttest"
)

// TestAtomicMix loads the defining package first so the AtomicUseFact
// crosses the package boundary into mixuse, like the real driver's
// dependency-order walk.
func TestAtomicMix(t *testing.T) {
	linttest.Run(t, linttest.TestdataDir(t), atomicmix.Analyzer, "mixdef", "mixuse")
}
