// Package mixdef defines a counter updated via sync/atomic and
// exercises every single-owner window the analyzer exempts, plus one
// in-package violation.
package mixdef

import "sync/atomic"

type Gauge struct {
	N int64
}

// New touches N plainly before the value is published: exempt
// (constructor window).
func New() *Gauge {
	g := &Gauge{}
	g.N = 0
	return g
}

// Inc is the atomic update that marks the field.
func (g *Gauge) Inc() {
	atomic.AddInt64(&g.N, 1)
}

// Get reads atomically: fine.
func (g *Gauge) Get() int64 {
	return atomic.LoadInt64(&g.N)
}

// Reset writes plainly inside a quiesced-writer window: exempt.
func (g *Gauge) Reset() {
	g.N = 0
}

// Peek mixes a plain read into the atomically updated field.
func (g *Gauge) Peek() int64 {
	return g.N // want `field N of Gauge is updated via sync/atomic \(mixdef\.go:\d+\) but accessed plainly here`
}
