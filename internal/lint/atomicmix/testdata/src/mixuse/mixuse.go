// Package mixuse accesses mixdef's atomically updated field plainly
// from another package: the AtomicUseFact exported while analyzing
// mixdef is what makes this reportable.
package mixuse

import "mixdef"

// Sample reads the counter without the atomic load.
func Sample(g *mixdef.Gauge) int64 {
	return g.N // want `field N of Gauge is updated via sync/atomic \(mixdef\.go:\d+\) but accessed plainly here`
}

// Snapshot documents why its plain read is acceptable.
func Snapshot(g *mixdef.Gauge) int64 {
	//lint:ignore atomicmix approximate snapshot; tearing is tolerated by the caller
	return g.N
}

// Fresh writes plainly inside a constructor for the owner type defined
// elsewhere — still exempt: the window rule keys on the owner, not the
// defining package.
func Fresh() *mixdef.Gauge {
	g := &mixdef.Gauge{}
	g.N = 7
	return g
}
