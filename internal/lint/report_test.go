package lint_test

import (
	"bytes"
	"go/token"
	"strings"
	"testing"

	"maskedspgemm/internal/lint"
)

func sampleReport(t *testing.T) ([]byte, *lint.Report) {
	t.Helper()
	fset := token.NewFileSet()
	f := fset.AddFile("pkg/x.go", -1, 100)
	r := lint.BuildReport(fset, []lint.Diagnostic{
		{Pos: f.Pos(10), Analyzer: "lockorder", Message: "potential deadlock"},
	})
	data, err := lint.MarshalReport(r)
	if err != nil {
		t.Fatalf("MarshalReport: %v", err)
	}
	return data, r
}

func TestReportRoundTrip(t *testing.T) {
	data, r := sampleReport(t)
	if err := lint.ValidateLintJSON(data); err != nil {
		t.Fatalf("ValidateLintJSON rejected the emitter's own output: %v", err)
	}
	if r.Schema != lint.ReportSchema {
		t.Fatalf("schema = %q, want %q", r.Schema, lint.ReportSchema)
	}
	if len(r.Findings) != 1 || r.Findings[0].File != "pkg/x.go" || r.Findings[0].Line != 1 || r.Findings[0].Col != 11 {
		t.Fatalf("findings = %+v", r.Findings)
	}
}

func TestReportEmptyFindingsIsArray(t *testing.T) {
	data, err := lint.MarshalReport(lint.BuildReport(token.NewFileSet(), nil))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"findings": []`) {
		t.Fatalf("clean report must serialize findings as [], got:\n%s", data)
	}
}

func TestValidateLintJSONRejects(t *testing.T) {
	data, _ := sampleReport(t)

	wrongSchema := bytes.Replace(data, []byte(lint.ReportSchema), []byte("maskedspgemm/lint/v0"), 1)
	if err := lint.ValidateLintJSON(wrongSchema); err == nil {
		t.Error("wrong schema tag accepted")
	}

	unknownField := bytes.Replace(data, []byte(`"findings"`), []byte(`"extra": 1, "findings"`), 1)
	if err := lint.ValidateLintJSON(unknownField); err == nil {
		t.Error("unknown field accepted (decode must be strict)")
	}

	if err := lint.ValidateLintJSON([]byte("{")); err == nil {
		t.Error("truncated document accepted")
	}
}
