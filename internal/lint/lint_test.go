package lint_test

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"

	"maskedspgemm/internal/lint"
)

const suppressSrc = `package p

func a() {
	//lint:ignore testcheck covered by integration test
	_ = 1
	//lint:ignore othercheck reason here
	_ = 2
	//lint:ignore testcheck
	_ = 3
	//lint:ignore all broad reason
	_ = 4
	_ = 5 //lint:ignore testcheck same-line reason

	_ = 6
}
`

func TestSuppress(t *testing.T) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", suppressSrc, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	tf := fset.File(f.Pos())
	at := func(line int) token.Pos { return tf.LineStart(line) }
	diags := []lint.Diagnostic{
		{Pos: at(5), Analyzer: "testcheck", Message: "line-above directive"},
		{Pos: at(7), Analyzer: "testcheck", Message: "directive names another check"},
		{Pos: at(9), Analyzer: "testcheck", Message: "reasonless directive never suppresses"},
		{Pos: at(11), Analyzer: "testcheck", Message: "all silences everything"},
		{Pos: at(12), Analyzer: "testcheck", Message: "same-line directive"},
		{Pos: at(14), Analyzer: "testcheck", Message: "no directive at all"},
	}
	got := lint.Suppress(fset, []*ast.File{f}, diags)

	type want struct {
		line     int
		analyzer string
	}
	// Lines 5, 11 and 12 are suppressed; 7 (wrong check), 9 (no reason)
	// and 13 (no directive) survive; the reasonless directive on line 8
	// is reported as its own finding, appended after the kept ones.
	wants := []want{
		{7, "testcheck"},
		{9, "testcheck"},
		{14, "testcheck"},
		{8, "lintdirective"},
	}
	if len(got) != len(wants) {
		t.Fatalf("Suppress kept %d diagnostics, want %d: %+v", len(got), len(wants), got)
	}
	for i, w := range wants {
		pos := fset.Position(got[i].Pos)
		if pos.Line != w.line || got[i].Analyzer != w.analyzer {
			t.Errorf("diag %d = %s at line %d, want %s at line %d (message %q)",
				i, got[i].Analyzer, pos.Line, w.analyzer, w.line, got[i].Message)
		}
	}
	if !strings.Contains(got[3].Message, "the reason is required") {
		t.Errorf("malformed-directive message = %q, want it to demand a reason", got[3].Message)
	}
}

const directiveSrc = `package p

//spgemm:hotpath
func hot() {}

// spgemm:hotpath mentioned in prose is not a directive.
func cold() {}

// sparseDot is the inner kernel.
//
//spgemm:hotpath
func docThenDirective() {}
`

func TestHasDirective(t *testing.T) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", directiveSrc, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]bool{"hot": true, "cold": false, "docThenDirective": true}
	for _, decl := range f.Decls {
		fd := decl.(*ast.FuncDecl)
		if got := lint.HasDirective(fd.Doc, "//spgemm:hotpath"); got != want[fd.Name.Name] {
			t.Errorf("HasDirective(%s) = %v, want %v", fd.Name.Name, got, want[fd.Name.Name])
		}
	}
}
