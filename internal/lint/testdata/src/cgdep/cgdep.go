// Package cgdep is the dependency side of the call-graph fixture.
package cgdep

// Leaf is called from cgmain both directly and through a method.
func Leaf() {}
