// Package locksum exercises the lockset dataflow: plain and deferred
// unlocks, nested acquisition, goroutine isolation, and local mutexes.
package locksum

import "sync"

var gate sync.Mutex

type Box struct {
	mu sync.Mutex
	n  int
}

func fill(b *Box) { b.n = 9 }

// Guarded calls fill under the lock, then again after releasing it;
// only the first call lands in the summary.
func (b *Box) Guarded() {
	b.mu.Lock()
	fill(b)
	b.mu.Unlock()
	fill(b)
}

// Deferred keeps the lock held to function exit.
func (b *Box) Deferred() {
	b.mu.Lock()
	defer b.mu.Unlock()
	fill(b)
}

// Nested acquires the package gate, then Box.mu while holding it.
func Nested(b *Box) {
	gate.Lock()
	defer gate.Unlock()
	b.mu.Lock()
	b.n++
	b.mu.Unlock()
}

// Spawn must not leak the spawner's held set into the goroutine.
func Spawn(b *Box) {
	b.mu.Lock()
	defer b.mu.Unlock()
	go fill(b)
	fill(b)
}

// Local names a function-local mutex by its enclosing function.
func Local() {
	var mu sync.Mutex
	mu.Lock()
	mu.Unlock()
}
