// Package cgmain exercises every call-site shape the graph resolves:
// method calls, cross-package calls, go/defer flags, calls inside
// function literals (attributed to the enclosing declaration), calls
// into export-data-only functions, and unresolvable function values.
package cgmain

import (
	"strings"

	"cgdep"
)

type T struct{}

// M calls across the package boundary and into the stdlib.
func (t T) M() string {
	cgdep.Leaf()
	return strings.ToUpper("m")
}

// Top's body covers the edge-flag matrix.
func Top() {
	var t T
	t.M()
	go cgdep.Leaf()
	defer helper()
	f := func() { helper() }
	f()
}

func helper() {}
