// Package locksumuse calls into locksum so the fact round-trip test
// can resolve a locksum method from this package's type info and read
// the summary fact exported while locksum was analyzed.
package locksumuse

import "locksum"

// Use calls the guarded method across the package boundary.
func Use(b *locksum.Box) {
	b.Guarded()
}
