// Package analyzers enumerates the spgemm-lint analyzer suite in one
// place, so the multichecker binary and any future tooling agree on
// what "the suite" is.
package analyzers

import (
	"maskedspgemm/internal/lint"
	"maskedspgemm/internal/lint/atomicmix"
	"maskedspgemm/internal/lint/atomicpad"
	"maskedspgemm/internal/lint/checkoutrelease"
	"maskedspgemm/internal/lint/ctxcancel"
	"maskedspgemm/internal/lint/errtaxonomy"
	"maskedspgemm/internal/lint/goroutineleak"
	"maskedspgemm/internal/lint/hotpathalloc"
	"maskedspgemm/internal/lint/lockorder"
	"maskedspgemm/internal/lint/nilsaferecorder"
)

// All returns the full analyzer suite in deterministic order: the six
// per-package contracts, then the three whole-program concurrency
// contracts (lockorder, atomicmix, goroutineleak) built on the call
// graph and lockset layer.
func All() []*lint.Analyzer {
	return []*lint.Analyzer{
		atomicmix.Analyzer,
		atomicpad.Analyzer,
		checkoutrelease.Analyzer,
		ctxcancel.Analyzer,
		errtaxonomy.Analyzer,
		goroutineleak.Analyzer,
		hotpathalloc.Analyzer,
		lockorder.Analyzer,
		nilsaferecorder.Analyzer,
	}
}
