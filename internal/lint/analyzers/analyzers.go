// Package analyzers enumerates the spgemm-lint analyzer suite in one
// place, so the multichecker binary and any future tooling agree on
// what "the suite" is.
package analyzers

import (
	"maskedspgemm/internal/lint"
	"maskedspgemm/internal/lint/atomicpad"
	"maskedspgemm/internal/lint/checkoutrelease"
	"maskedspgemm/internal/lint/ctxcancel"
	"maskedspgemm/internal/lint/errtaxonomy"
	"maskedspgemm/internal/lint/hotpathalloc"
	"maskedspgemm/internal/lint/nilsaferecorder"
)

// All returns the full analyzer suite in deterministic order.
func All() []*lint.Analyzer {
	return []*lint.Analyzer{
		atomicpad.Analyzer,
		checkoutrelease.Analyzer,
		ctxcancel.Analyzer,
		errtaxonomy.Analyzer,
		hotpathalloc.Analyzer,
		nilsaferecorder.Analyzer,
	}
}
