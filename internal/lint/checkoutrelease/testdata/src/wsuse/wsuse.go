// Package wsuse is the checkoutrelease fixture: workspace checkouts
// with and without deferred releases, plus every exempt ownership
// shape.
package wsuse

import "exec"

// leak checks out and never releases.
func leak(e *exec.Engine) {
	ws := exec.Masked[int, int](e, 64, 8, 2, 4) // want `workspace ws from exec.Masked has no deferred Release`
	_ = ws
}

// direct releases through a plain defer.
func direct(e *exec.Engine) {
	ws := exec.Masked[int, int](e, 64, 8, 2, 4)
	defer ws.Release()
	_ = ws
}

// cleanFlag releases inside a deferred cleanup closure — the
// quarantine pattern used throughout internal/core.
func cleanFlag(e *exec.Engine) error {
	ws := exec.Dense(e, 64, 1, 0)
	clean := false
	defer func() {
		if !clean {
			ws.Poison()
		}
		ws.Release()
	}()
	clean = true
	return nil
}

// pairCleanup releases two workspaces from one deferred closure, like
// the fused pipeline.
func pairCleanup(e *exec.Engine) {
	ws1 := exec.Masked[int, int](e, 64, 8, 2, 4)
	ws2 := exec.Masked[int, int](e, 32, 8, 2, 4)
	defer func() {
		ws1.Release()
		ws2.Release()
	}()
	_, _ = ws1, ws2
}

// lateRelease calls Release without defer: an early return or panic
// skips it, so the checkout must still be reported.
func lateRelease(e *exec.Engine, fail bool) error {
	ws := exec.Masked[int, int](e, 64, 8, 2, 4) // want `workspace ws from exec.Masked has no deferred Release`
	if fail {
		return errFailed
	}
	ws.Release()
	return nil
}

var errFailed error

type holder struct{ ws *exec.Workspace[int] }

// fieldTransfer hands the workspace to a longer-lived owner.
func fieldTransfer(h *holder, e *exec.Engine) {
	h.ws = exec.Masked[int, int](e, 64, 8, 2, 4)
}

// returned hands the workspace to the caller.
func returned(e *exec.Engine) *exec.Workspace[int] {
	ws := exec.Masked[int, int](e, 64, 8, 2, 4)
	return ws
}

// nilEngine builds an unpooled workspace: nothing to release.
func nilEngine() {
	ws := exec.Masked[int, int](nil, 64, 8, 2, 4)
	_ = ws
}

// discarded drops the workspace on the floor.
func discarded(e *exec.Engine) {
	exec.Dense(e, 64, 1, 0) // want `result of exec.Dense is discarded`
}

// blanked discards through the blank identifier.
func blanked(e *exec.Engine) {
	_ = exec.Dense(e, 64, 1, 0) // want `result of exec.Dense is discarded`
}

// suppressed carries an ignore directive.
func suppressed(e *exec.Engine) {
	//lint:ignore checkoutrelease fixture exercises the suppression path
	ws := exec.Dense(e, 64, 1, 0)
	_ = ws
}

// closureUnits: each function literal is its own scope — the leaking
// one fires even though its sibling releases correctly.
func closureUnits(e *exec.Engine) {
	bad := func() {
		ws := exec.Dense(e, 64, 1, 0) // want `workspace ws from exec.Dense has no deferred Release`
		_ = ws
	}
	good := func() {
		ws := exec.Dense(e, 64, 1, 0)
		defer ws.Release()
		_ = ws
	}
	bad()
	good()
}
