// Package exec is the checkoutrelease fixture's stand-in for the real
// workspace pool: just enough surface — generic Masked, plain Dense,
// Release/Poison — for the analyzer's type-based matching.
package exec

type Engine struct{}

type Workspace[T any] struct{ _ []T }

func (ws *Workspace[T]) Release() {}
func (ws *Workspace[T]) Poison()  {}

func Masked[T any, S any](e *Engine, cols, rowCap, workers, tiles int) *Workspace[T] {
	return &Workspace[T]{}
}

func Dense(e *Engine, n, workers, tiles int) *Workspace[int] {
	return &Workspace[int]{}
}
