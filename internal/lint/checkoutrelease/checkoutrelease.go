// Package checkoutrelease verifies that every pooled-workspace checkout
// (exec.Masked / exec.Dense) in a function is paired with a Release
// that runs on every exit of that function. A plain end-of-body
// ws.Release() does not count: an early error return or a panic
// unwinding past it leaks the workspace out of the engine's pool (and,
// worse, can leave a dirty workspace checked out forever). Only
// defer-based releases are accepted — either
//
//	defer ws.Release()
//
// directly, or a ws.Release() inside a deferred cleanup closure, the
// repository's clean-flag quarantine pattern:
//
//	clean := false
//	defer func() {
//		if !clean {
//			ws.Poison()
//		}
//		ws.Release()
//	}()
//
// Three shapes transfer ownership and are exempt by construction:
// assigning the checkout to a field or other non-identifier target
// (mu.ws = exec.Masked(...) — the owner's lifecycle releases it),
// returning the workspace to the caller, and checking out from a nil
// engine (the first argument is the literal nil: an unpooled workspace
// has no pool to leak from, so its Release is a no-op).
package checkoutrelease

import (
	"go/ast"
	"go/types"

	"maskedspgemm/internal/lint"
)

// Analyzer flags workspace checkouts without a deferred Release.
var Analyzer = &lint.Analyzer{
	Name: "checkoutrelease",
	Doc: "flags exec.Masked/exec.Dense checkouts whose Release is not " +
		"deferred: releases must survive error returns and panic unwinding",
	Run: run,
}

func run(pass *lint.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			// Every function body — declared or literal — is its own
			// unit: a checkout inside a closure must be released by a
			// defer inside that same closure, since the closure's
			// return is when its defers run.
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					checkBody(pass, fn.Body)
				}
			case *ast.FuncLit:
				checkBody(pass, fn.Body)
			}
			return true
		})
	}
	return nil
}

// site is one tracked checkout: the variable it was assigned to and
// where, for the diagnostic.
type site struct {
	obj  types.Object
	name string
	fn   string
	call *ast.CallExpr
}

// checkBody analyzes one function body in two interleaved sweeps:
// collect checkout assignments into local variables, and collect the
// set of variables whose Release is reachable through a defer (or that
// escape to the caller via return). Checkouts in neither set are
// reported.
func checkBody(pass *lint.Pass, body *ast.BlockStmt) {
	var sites []site
	released := map[types.Object]bool{}
	escaped := map[types.Object]bool{}

	ast.Inspect(body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.FuncLit:
			// A nested closure is checked as its own unit by run.
			return false
		case *ast.DeferStmt:
			// defer ws.Release() — direct.
			if obj := releaseReceiver(pass, st.Call); obj != nil {
				released[obj] = true
				return false
			}
			// defer func() { ... ws.Release() ... }() — the clean-flag
			// pattern; any Release inside the deferred literal counts,
			// including several (fused paths release two workspaces
			// from one cleanup).
			if lit, ok := st.Call.Fun.(*ast.FuncLit); ok {
				ast.Inspect(lit.Body, func(m ast.Node) bool {
					if call, ok := m.(*ast.CallExpr); ok {
						if obj := releaseReceiver(pass, call); obj != nil {
							released[obj] = true
						}
					}
					return true
				})
			}
			return false
		case *ast.ReturnStmt:
			// Returning the workspace hands ownership to the caller.
			for _, r := range st.Results {
				if id, ok := r.(*ast.Ident); ok {
					if obj := pass.TypesInfo.Uses[id]; obj != nil {
						escaped[obj] = true
					}
				}
			}
		case *ast.AssignStmt:
			if len(st.Rhs) != 1 || len(st.Lhs) != 1 {
				return true
			}
			name, call := checkoutCall(pass, st.Rhs[0])
			if call == nil || nilEngine(call) {
				return true
			}
			lhs, ok := st.Lhs[0].(*ast.Ident)
			if !ok {
				// Field or element assignment: ownership transfer to a
				// longer-lived owner.
				return true
			}
			if lhs.Name == "_" {
				pass.Reportf(call.Pos(),
					"result of %s is discarded: the pooled workspace can never be Released", name)
				return true
			}
			obj := pass.TypesInfo.Defs[lhs]
			if obj == nil {
				obj = pass.TypesInfo.Uses[lhs]
			}
			if obj != nil {
				sites = append(sites, site{obj: obj, name: lhs.Name, fn: name, call: call})
			}
		case *ast.ExprStmt:
			if name, call := checkoutCall(pass, st.X); call != nil && !nilEngine(call) {
				pass.Reportf(call.Pos(),
					"result of %s is discarded: the pooled workspace can never be Released", name)
			}
		}
		return true
	})

	for _, s := range sites {
		if released[s.obj] || escaped[s.obj] {
			continue
		}
		pass.Reportf(s.call.Pos(),
			"workspace %s from %s has no deferred Release: pair the checkout with "+
				"`defer %s.Release()` (or release it in a deferred cleanup closure) so "+
				"error returns and panics return it to the pool", s.name, s.fn, s.name)
	}
}

// checkoutCall reports whether e is a package-qualified call to
// exec.Masked or exec.Dense (unwrapping generic instantiation), and if
// so returns its display name and the call.
func checkoutCall(pass *lint.Pass, e ast.Expr) (string, *ast.CallExpr) {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return "", nil
	}
	fun := call.Fun
	switch idx := fun.(type) {
	case *ast.IndexExpr:
		fun = idx.X
	case *ast.IndexListExpr:
		fun = idx.X
	}
	sel, ok := fun.(*ast.SelectorExpr)
	if !ok || (sel.Sel.Name != "Masked" && sel.Sel.Name != "Dense") {
		return "", nil
	}
	qual, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", nil
	}
	pn, ok := pass.TypesInfo.Uses[qual].(*types.PkgName)
	if !ok || pn.Imported().Name() != "exec" {
		return "", nil
	}
	return "exec." + sel.Sel.Name, call
}

// nilEngine reports whether the checkout's first argument is the
// literal nil — an unpooled workspace, built and discarded per call,
// whose Release has nothing to return.
func nilEngine(call *ast.CallExpr) bool {
	if len(call.Args) == 0 {
		return false
	}
	id, ok := call.Args[0].(*ast.Ident)
	return ok && id.Name == "nil"
}

// releaseReceiver returns the object of x in a call of the form
// x.Release(), or nil if the call has another shape.
func releaseReceiver(pass *lint.Pass, call *ast.CallExpr) types.Object {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Release" {
		return nil
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return nil
	}
	return pass.TypesInfo.Uses[id]
}
