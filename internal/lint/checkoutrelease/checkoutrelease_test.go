package checkoutrelease_test

import (
	"testing"

	"maskedspgemm/internal/lint/checkoutrelease"
	"maskedspgemm/internal/lint/linttest"
)

func TestCheckoutRelease(t *testing.T) {
	linttest.Run(t, linttest.TestdataDir(t), checkoutrelease.Analyzer, "wsuse")
}
