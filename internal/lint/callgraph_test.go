package lint_test

import (
	"testing"

	"maskedspgemm/internal/lint"
	"maskedspgemm/internal/lint/linttest"
)

// findNode returns the unique graph node whose function has the given
// name.
func findNode(t *testing.T, g *lint.CallGraph, name string) *lint.Node {
	t.Helper()
	var found *lint.Node
	for _, n := range g.Nodes() {
		if n.Func.Name() == name {
			if found != nil {
				t.Fatalf("multiple nodes named %s", name)
			}
			found = n
		}
	}
	if found == nil {
		t.Fatalf("no node named %s", name)
	}
	return found
}

func TestBuildCallGraph(t *testing.T) {
	prog := linttest.Load(t, linttest.TestdataDir(t), "cgdep", "cgmain")
	g := lint.BuildCallGraph(prog)

	top := findNode(t, g, "Top")
	if top.Decl == nil || top.Pkg == nil || top.Pkg.ImportPath != "cgmain" {
		t.Fatalf("Top node not attributed to cgmain: %+v", top)
	}

	// Out edges in source order: t.M(), go cgdep.Leaf(), defer helper(),
	// helper() inside the function literal. f() is a function value and
	// does not resolve.
	if len(top.Out) != 4 {
		t.Fatalf("Top.Out = %d edges, want 4", len(top.Out))
	}
	wantCallees := []string{"M", "Leaf", "helper", "helper"}
	for i, e := range top.Out {
		if e.Callee.Func.Name() != wantCallees[i] {
			t.Errorf("Top.Out[%d] = %s, want %s", i, e.Callee.Func.Name(), wantCallees[i])
		}
		if e.Caller != top {
			t.Errorf("Top.Out[%d].Caller is not Top", i)
		}
	}
	if !top.Out[1].Go || top.Out[1].Defer {
		t.Errorf("go cgdep.Leaf() edge flags = go:%v defer:%v, want go only", top.Out[1].Go, top.Out[1].Defer)
	}
	if !top.Out[2].Defer || top.Out[2].Go {
		t.Errorf("defer helper() edge flags = go:%v defer:%v, want defer only", top.Out[2].Go, top.Out[2].Defer)
	}
	if top.Out[3].Go || top.Out[3].Defer {
		t.Errorf("literal-body helper() edge must be a plain call, got go:%v defer:%v", top.Out[3].Go, top.Out[3].Defer)
	}

	// Leaf lives in the other module package and is called from M and
	// from Top's go statement.
	leaf := findNode(t, g, "Leaf")
	if leaf.Decl == nil || leaf.Pkg == nil || leaf.Pkg.ImportPath != "cgdep" {
		t.Fatalf("Leaf node not attributed to cgdep: %+v", leaf)
	}
	if len(leaf.In) != 2 {
		t.Fatalf("Leaf.In = %d edges, want 2 (from M and Top)", len(leaf.In))
	}

	// A stdlib callee appears as an external node: no Decl, no Pkg.
	upper := findNode(t, g, "ToUpper")
	if upper.Decl != nil || upper.Pkg != nil {
		t.Fatalf("strings.ToUpper should be external (Decl/Pkg nil), got %+v", upper)
	}
	if len(upper.Out) != 0 {
		t.Fatalf("external node must have no outgoing edges, got %d", len(upper.Out))
	}

	// Lookup resolves through the same object identity the graph used.
	if g.Lookup(top.Func) != top {
		t.Fatal("Lookup(Top.Func) did not return the Top node")
	}
}
