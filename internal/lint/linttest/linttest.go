// Package linttest runs lint analyzers over fixture packages under a
// testdata/src tree and checks reported diagnostics against // want
// comments — the same contract as x/tools' analysistest, rebuilt on the
// standard library.
//
// A fixture package lives at testdata/src/<importpath>/ and is imported
// by that path; fixtures may import each other and the standard
// library. A // want comment holds one or more quoted regular
// expressions, each of which must be matched by exactly one diagnostic
// reported on that line:
//
//	x := make([]int, n) // want `allocates`
//
// Lines without a want comment must produce no diagnostics.
package linttest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"

	"maskedspgemm/internal/lint"
)

// Run loads each fixture package in order (dependencies first, so
// cross-package facts flow like in the real driver), applies the
// analyzer, and reports mismatches between diagnostics and // want
// comments as test errors.
func Run(t *testing.T, testdataDir string, a *lint.Analyzer, fixtures ...string) {
	t.Helper()
	prog, err := loadFixtures(testdataDir, fixtures)
	if err != nil {
		t.Fatalf("loading fixtures: %v", err)
	}
	diags, err := lint.Run(prog, []*lint.Analyzer{a})
	if err != nil {
		t.Fatalf("running %s: %v", a.Name, err)
	}
	checkWants(t, prog, diags)
}

// Load parses and type-checks the named fixture packages (dependencies
// first) and returns the Program, for tests that drive the framework's
// whole-program machinery (call graph, lockset) directly instead of
// through // want comparisons.
func Load(t *testing.T, testdataDir string, fixtures ...string) *lint.Program {
	t.Helper()
	prog, err := loadFixtures(testdataDir, fixtures)
	if err != nil {
		t.Fatalf("loading fixtures: %v", err)
	}
	return prog
}

// TestdataDir returns the caller's testdata/src directory.
func TestdataDir(t *testing.T) string {
	t.Helper()
	dir, err := filepath.Abs("testdata/src")
	if err != nil {
		t.Fatal(err)
	}
	return dir
}

var (
	stdExportsOnce sync.Once
	stdExports     map[string]string
	stdExportsErr  error
)

// stdExportData builds (once per process) the import path → export data
// file map for the whole standard library, via the go command's build
// cache. Fixtures may then import any stdlib package.
func stdExportData() (map[string]string, error) {
	stdExportsOnce.Do(func() {
		out, err := goListExport("std")
		if err != nil {
			stdExportsErr = err
			return
		}
		stdExports = out
	})
	return stdExports, stdExportsErr
}

func goListExport(pattern string) (map[string]string, error) {
	cmd := exec.Command("go", "list", "-export", "-f", "{{.ImportPath}}\t{{.Export}}", pattern)
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %w", pattern, err)
	}
	exports := map[string]string{}
	for _, line := range strings.Split(string(out), "\n") {
		path, file, ok := strings.Cut(line, "\t")
		if ok && file != "" && file != "<nil>" {
			exports[path] = file
		}
	}
	return exports, nil
}

// loadFixtures parses and type-checks the named fixture packages (and,
// recursively, fixture packages they import) from testdataDir.
func loadFixtures(testdataDir string, fixtures []string) (*lint.Program, error) {
	exports, err := stdExportData()
	if err != nil {
		return nil, err
	}
	prog := &lint.Program{
		Fset:  token.NewFileSet(),
		Sizes: types.SizesFor("gc", runtime.GOARCH),
	}
	gcImp := importer.ForCompiler(prog.Fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	checked := map[string]*lint.Package{}
	var check func(path string) (*lint.Package, error)
	check = func(path string) (*lint.Package, error) {
		if pkg, ok := checked[path]; ok {
			if pkg == nil {
				return nil, fmt.Errorf("fixture import cycle through %q", path)
			}
			return pkg, nil
		}
		checked[path] = nil
		dir := filepath.Join(testdataDir, filepath.FromSlash(path))
		entries, err := os.ReadDir(dir)
		if err != nil {
			return nil, err
		}
		var files []*ast.File
		for _, e := range entries {
			if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
				continue
			}
			f, err := parser.ParseFile(prog.Fset, filepath.Join(dir, e.Name()), nil,
				parser.ParseComments|parser.SkipObjectResolution)
			if err != nil {
				return nil, err
			}
			files = append(files, f)
		}
		if len(files) == 0 {
			return nil, fmt.Errorf("fixture %q has no Go files", path)
		}
		info := &types.Info{
			Types:      map[ast.Expr]types.TypeAndValue{},
			Defs:       map[*ast.Ident]types.Object{},
			Uses:       map[*ast.Ident]types.Object{},
			Selections: map[*ast.SelectorExpr]*types.Selection{},
			Implicits:  map[ast.Node]types.Object{},
			Scopes:     map[ast.Node]*types.Scope{},
			Instances:  map[*ast.Ident]types.Instance{},
		}
		conf := types.Config{
			Importer: importerFunc(func(ipath string) (*types.Package, error) {
				if _, statErr := os.Stat(filepath.Join(testdataDir, filepath.FromSlash(ipath))); statErr == nil {
					pkg, err := check(ipath)
					if err != nil {
						return nil, err
					}
					return pkg.Types, nil
				}
				return gcImp.Import(ipath)
			}),
			Sizes: prog.Sizes,
		}
		tpkg, err := conf.Check(path, prog.Fset, files, info)
		if err != nil {
			return nil, fmt.Errorf("type-checking fixture %s: %w", path, err)
		}
		pkg := &lint.Package{ImportPath: path, Dir: dir, Files: files, Types: tpkg, Info: info}
		checked[path] = pkg
		prog.Packages = append(prog.Packages, pkg)
		return pkg, nil
	}
	for _, f := range fixtures {
		if _, err := check(f); err != nil {
			return nil, err
		}
	}
	return prog, nil
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

var wantRE = regexp.MustCompile("`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\"")

// checkWants matches diagnostics against // want comments 1:1 per line.
func checkWants(t *testing.T, prog *lint.Program, diags []lint.Diagnostic) {
	t.Helper()
	type lineKey struct {
		file string
		line int
	}
	type want struct {
		re   *regexp.Regexp
		used bool
	}
	wants := map[lineKey][]*want{}
	for _, pkg := range prog.Packages {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					rest, ok := strings.CutPrefix(c.Text, "// want ")
					if !ok {
						continue
					}
					pos := prog.Fset.Position(c.Pos())
					key := lineKey{pos.Filename, pos.Line}
					for _, m := range wantRE.FindAllString(rest, -1) {
						pattern := m
						if pattern[0] == '`' {
							pattern = pattern[1 : len(pattern)-1]
						} else if unq, err := strconv.Unquote(pattern); err == nil {
							pattern = unq
						}
						re, err := regexp.Compile(pattern)
						if err != nil {
							t.Errorf("%s: bad want pattern %q: %v", pos, m, err)
							continue
						}
						wants[key] = append(wants[key], &want{re: re})
					}
				}
			}
		}
	}
	for _, d := range diags {
		pos := prog.Fset.Position(d.Pos)
		key := lineKey{pos.Filename, pos.Line}
		matched := false
		for _, w := range wants[key] {
			if !w.used && w.re.MatchString(d.Message) {
				w.used = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected diagnostic: [%s] %s", pos, d.Analyzer, d.Message)
		}
	}
	keys := make([]lineKey, 0, len(wants))
	for k := range wants {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].file != keys[j].file {
			return keys[i].file < keys[j].file
		}
		return keys[i].line < keys[j].line
	})
	for _, k := range keys {
		for _, w := range wants[k] {
			if !w.used {
				t.Errorf("%s:%d: expected diagnostic matching %q was not reported", k.file, k.line, w.re)
			}
		}
	}
}
