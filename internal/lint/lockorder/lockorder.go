// Package lockorder verifies the whole-program lock-acquisition order.
// The per-package pass runs the framework's lockset dataflow over every
// declared function and exports the resulting FuncLockSummary as an
// object fact; the whole-program pass combines those summaries with the
// cross-package call graph into a global lock-acquisition graph — an
// edge A → B means some execution path acquires B while holding A,
// possibly through a chain of calls spanning packages — and reports
// every cycle as a potential deadlock, witnessed by the call chains
// that realize each edge of the cycle.
//
// A cycle of length one (A → A) is a self-deadlock: Go mutexes are not
// reentrant, so any path that re-acquires a lock of the same identity
// while holding it will hang the moment both acquisitions hit the same
// instance. Longer cycles are the classic ABBA inversion: two
// goroutines entering the cycle from different edges block each other
// forever.
//
// Lock identity is by declaration site ("pkg.Type.field"), so two
// instances of the same type share an identity; see the lockset
// documentation in internal/lint for why this over-approximation is
// the contract worth enforcing. Intentional same-type nesting (e.g. a
// parent/child of a hierarchy with a documented instance order) is
// suppressed with //lint:ignore lockorder <reason> on the inner
// acquisition.
package lockorder

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"maskedspgemm/internal/lint"
)

// Analyzer is the lockorder pass.
var Analyzer = &lint.Analyzer{
	Name:       "lockorder",
	Doc:        "the global lock-acquisition graph must be acyclic; cycles are potential deadlocks",
	Run:        run,
	RunProgram: runProgram,
}

// run exports one FuncLockSummary fact per declared function that
// acquires a lock or calls anything while holding one.
func run(pass *lint.Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			if sum := lint.ComputeLockSummary(pass.TypesInfo, pass.Pkg.Path(), fd); sum != nil {
				pass.ExportObjectFact(fn, sum)
			}
		}
	}
	return nil
}

// step is one frame of a witness chain: fn performs the next call (or
// the final acquisition) at pos.
type step struct {
	fn  *types.Func
	pos token.Pos
}

// acqPath is how a function (transitively) reaches a lock acquisition.
type acqPath struct {
	chain []step
}

// lockEdge is one edge of the global lock graph with its first witness.
type lockEdge struct {
	from, to lint.LockID
	// holder is the function that held `from`, and chain the call path
	// from it down to the acquisition of `to`.
	chain []step
	pos   token.Pos
}

func runProgram(pass *lint.ProgramPass) error {
	facts := pass.AllObjectFacts()
	sums := make(map[*types.Func]*lint.FuncLockSummary, len(facts))
	for obj, f := range facts {
		if fn, ok := obj.(*types.Func); ok {
			if sum, ok := f.(*lint.FuncLockSummary); ok {
				sums[fn] = sum
			}
		}
	}

	// transAcquires computes, per function, every lock it may acquire
	// (directly or through calls) with one witness chain each. Memoized;
	// recursion through call-graph cycles contributes nothing on the
	// back edge.
	memo := map[*types.Func]map[lint.LockID]acqPath{}
	onStack := map[*types.Func]bool{}
	var trans func(fn *types.Func) map[lint.LockID]acqPath
	trans = func(fn *types.Func) map[lint.LockID]acqPath {
		if got, ok := memo[fn]; ok {
			return got
		}
		if onStack[fn] {
			return nil
		}
		onStack[fn] = true
		defer func() { onStack[fn] = false }()
		out := map[lint.LockID]acqPath{}
		if sum := sums[fn]; sum != nil {
			for _, acq := range sum.Acquires {
				if _, ok := out[acq.ID]; !ok {
					out[acq.ID] = acqPath{chain: []step{{fn, acq.Pos}}}
				}
			}
		}
		if node := pass.Graph.Lookup(fn); node != nil {
			for _, e := range node.Out {
				if e.Callee.Decl == nil || e.Go {
					// External callees acquire no module locks; a spawned
					// goroutine does not extend the spawner's lock order.
					continue
				}
				for id, p := range trans(e.Callee.Func) {
					if _, ok := out[id]; !ok {
						out[id] = acqPath{chain: append([]step{{fn, e.Pos}}, p.chain...)}
					}
				}
			}
		}
		memo[fn] = out
		return out
	}

	// Build the lock graph. The first witness (in deterministic
	// function order) is kept per edge.
	edges := map[[2]lint.LockID]*lockEdge{}
	addEdge := func(from, to lint.LockID, chain []step, pos token.Pos) {
		key := [2]lint.LockID{from, to}
		if have, ok := edges[key]; !ok || pos < have.pos {
			edges[key] = &lockEdge{from: from, to: to, chain: chain, pos: pos}
		}
	}
	fns := make([]*types.Func, 0, len(sums))
	for fn := range sums {
		fns = append(fns, fn)
	}
	sort.Slice(fns, func(i, j int) bool { return fns[i].Pos() < fns[j].Pos() })
	for _, fn := range fns {
		sum := sums[fn]
		for _, acq := range sum.Acquires {
			for _, h := range acq.Held {
				addEdge(h, acq.ID, []step{{fn, acq.Pos}}, acq.Pos)
			}
		}
		for _, c := range sum.Calls {
			callee := c.Callee
			if node := pass.Graph.Lookup(callee); node == nil || node.Decl == nil {
				continue
			}
			for id, p := range trans(callee) {
				for _, h := range c.Held {
					addEdge(h, id, append([]step{{fn, c.Pos}}, p.chain...), c.Pos)
				}
			}
		}
	}

	reportCycles(pass, edges)
	return nil
}

// reportCycles finds the strongly connected components of the lock
// graph and reports each component with a cycle (size > 1, or a
// self-edge) once, witnessed by every internal edge's call chain.
func reportCycles(pass *lint.ProgramPass, edges map[[2]lint.LockID]*lockEdge) {
	adj := map[lint.LockID][]lint.LockID{}
	var nodes []lint.LockID
	seen := map[lint.LockID]bool{}
	addNode := func(id lint.LockID) {
		if !seen[id] {
			seen[id] = true
			nodes = append(nodes, id)
		}
	}
	keys := make([][2]lint.LockID, 0, len(edges))
	for k := range edges {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i][0] != keys[j][0] {
			return keys[i][0] < keys[j][0]
		}
		return keys[i][1] < keys[j][1]
	})
	for _, k := range keys {
		addNode(k[0])
		addNode(k[1])
		adj[k[0]] = append(adj[k[0]], k[1])
	}

	// Tarjan's SCC, iterative-friendly scale (lock graphs are tiny).
	index := map[lint.LockID]int{}
	low := map[lint.LockID]int{}
	onStack := map[lint.LockID]bool{}
	var stack []lint.LockID
	var sccs [][]lint.LockID
	next := 0
	var strong func(v lint.LockID)
	strong = func(v lint.LockID) {
		index[v] = next
		low[v] = next
		next++
		stack = append(stack, v)
		onStack[v] = true
		for _, w := range adj[v] {
			if _, ok := index[w]; !ok {
				strong(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			var scc []lint.LockID
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				scc = append(scc, w)
				if w == v {
					break
				}
			}
			sccs = append(sccs, scc)
		}
	}
	for _, v := range nodes {
		if _, ok := index[v]; !ok {
			strong(v)
		}
	}

	for _, scc := range sccs {
		inSCC := map[lint.LockID]bool{}
		for _, id := range scc {
			inSCC[id] = true
		}
		var cyclic []*lockEdge
		for _, k := range keys {
			if inSCC[k[0]] && inSCC[k[1]] && (len(scc) > 1 || k[0] == k[1]) {
				cyclic = append(cyclic, edges[k])
			}
		}
		if len(cyclic) == 0 {
			continue
		}
		sort.Slice(cyclic, func(i, j int) bool { return cyclic[i].pos < cyclic[j].pos })
		ids := make([]string, 0, len(scc))
		for _, id := range scc {
			ids = append(ids, displayLock(id))
		}
		sort.Strings(ids)
		var b strings.Builder
		fmt.Fprintf(&b, "potential deadlock: lock-order cycle among %s", strings.Join(ids, ", "))
		for i, e := range cyclic {
			fmt.Fprintf(&b, "; chain %d: %s acquired while holding %s via %s",
				i+1, displayLock(e.to), displayLock(e.from), renderChain(pass, e.chain))
		}
		pass.Reportf(cyclic[0].pos, "%s", b.String())
	}
}

// displayLock shortens a LockID's package path to its base name.
func displayLock(id lint.LockID) string {
	s := string(id)
	if i := strings.LastIndexByte(s, '/'); i >= 0 {
		s = s[i+1:]
	}
	return s
}

// renderChain formats a witness chain as "f -> g -> h (file:line)".
func renderChain(pass *lint.ProgramPass, chain []step) string {
	parts := make([]string, len(chain))
	for i, s := range chain {
		parts[i] = shortFuncName(s.fn)
	}
	out := strings.Join(parts, " -> ")
	if n := len(chain); n > 0 {
		pos := pass.Prog.Fset.Position(chain[n-1].pos)
		out += fmt.Sprintf(" (%s:%d)", baseName(pos.Filename), pos.Line)
	}
	return out
}

func baseName(path string) string {
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		return path[i+1:]
	}
	return path
}

// shortFuncName renders pkg.Func or pkg.(Type).Method.
func shortFuncName(fn *types.Func) string {
	pkg := "_"
	if fn.Pkg() != nil {
		pkg = fn.Pkg().Name()
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if named, ok := t.(*types.Named); ok {
			return fmt.Sprintf("%s.(%s).%s", pkg, named.Obj().Name(), fn.Name())
		}
	}
	return pkg + "." + fn.Name()
}
