// Package lockcycle is the seeded ABBA inversion: two functions take
// the same two locks in opposite orders.
package lockcycle

import "sync"

type A struct{ mu sync.Mutex }

type B struct{ mu sync.Mutex }

// AThenB acquires A.mu, then B.mu while still holding it.
func AThenB(a *A, b *B) {
	a.mu.Lock()
	defer a.mu.Unlock()
	b.mu.Lock() // want `potential deadlock: lock-order cycle among lockcycle\.A\.mu, lockcycle\.B\.mu; chain 1: lockcycle\.B\.mu acquired while holding lockcycle\.A\.mu via lockcycle\.AThenB \(lockcycle\.go:\d+\); chain 2: lockcycle\.A\.mu acquired while holding lockcycle\.B\.mu via lockcycle\.BThenA \(lockcycle\.go:\d+\)`
	b.mu.Unlock()
}

// BThenA acquires the same pair in the opposite order — the second half
// of the inversion.
func BThenA(a *A, b *B) {
	b.mu.Lock()
	defer b.mu.Unlock()
	a.mu.Lock()
	a.mu.Unlock()
}
