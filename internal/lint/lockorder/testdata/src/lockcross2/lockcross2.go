// Package lockcross2 is the dependency half of the cross-package cycle
// fixture: its lock summary (Bump acquires Store.Mu) is exported as an
// object fact and consumed when lockcross1 is analyzed.
package lockcross2

import "sync"

type Store struct {
	Mu sync.Mutex
	n  int
}

// Bump acquires Store.Mu with nothing held: no edge by itself.
func (s *Store) Bump() {
	s.Mu.Lock()
	s.n++
	s.Mu.Unlock()
}
