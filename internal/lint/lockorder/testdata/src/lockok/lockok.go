// Package lockok nests two locks in a consistent order everywhere: the
// lock graph is a DAG and nothing is reported. It also carries a
// documented same-type nesting under //lint:ignore.
package lockok

import "sync"

type Inner struct {
	mu sync.Mutex
	n  int
}

type Outer struct {
	mu sync.Mutex
	in Inner
}

// Set takes Outer.mu before Inner.mu.
func (o *Outer) Set(n int) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.in.mu.Lock()
	o.in.n = n
	o.in.mu.Unlock()
}

// Get takes the same order: consistent, so no cycle.
func (o *Outer) Get() int {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.in.mu.Lock()
	defer o.in.mu.Unlock()
	return o.in.n
}

type Node struct {
	mu    sync.Mutex
	child *Node
}

// Graft nests two locks of the same identity (parent and child Node),
// which the by-declaration-site abstraction reports as a self-cycle;
// the instance order (parent before child, tree-shaped ownership) is
// documented on the inner acquisition.
func (n *Node) Graft(child *Node) {
	n.mu.Lock()
	defer n.mu.Unlock()
	//lint:ignore lockorder parent-before-child over a tree: instances are provably distinct
	child.mu.Lock()
	n.child = child
	child.mu.Unlock()
}
