// Package lockself is the length-one cycle: a method re-acquires a
// non-reentrant mutex through a helper call while already holding it.
package lockself

import "sync"

type Counter struct {
	mu sync.Mutex
	n  int
}

// Add holds mu across a call to bump, which locks mu again: guaranteed
// self-deadlock on the same instance.
func (c *Counter) Add() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.bump() // want `potential deadlock: lock-order cycle among lockself\.Counter\.mu; chain 1: lockself\.Counter\.mu acquired while holding lockself\.Counter\.mu via lockself\.\(Counter\)\.Add -> lockself\.\(Counter\)\.bump \(lockself\.go:\d+\)`
}

func (c *Counter) bump() {
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
}
