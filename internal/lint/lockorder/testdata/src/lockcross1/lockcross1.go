// Package lockcross1 closes the cross-package cycle: Flush holds
// Cache.mu across a call into lockcross2 (Cache.mu -> Store.Mu, an edge
// that only exists because lockcross2's lock summary crossed the
// package boundary as a fact), and Refill takes the pair in the
// opposite order.
package lockcross1

import (
	"sync"

	"lockcross2"
)

type Cache struct {
	mu sync.Mutex
	s  *lockcross2.Store
}

// Flush holds Cache.mu across the Bump call that acquires Store.Mu.
func (c *Cache) Flush() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.s.Bump() // want `potential deadlock: lock-order cycle among lockcross1\.Cache\.mu, lockcross2\.Store\.Mu; chain 1: lockcross2\.Store\.Mu acquired while holding lockcross1\.Cache\.mu via lockcross1\.\(Cache\)\.Flush -> lockcross2\.\(Store\)\.Bump \(lockcross2\.go:\d+\); chain 2: lockcross1\.Cache\.mu acquired while holding lockcross2\.Store\.Mu via lockcross1\.\(Cache\)\.Refill \(lockcross1\.go:\d+\)`
}

// Refill takes Store.Mu first, then Cache.mu: the inverted order.
func (c *Cache) Refill(s *lockcross2.Store) {
	s.Mu.Lock()
	defer s.Mu.Unlock()
	c.mu.Lock()
	c.mu.Unlock()
}
