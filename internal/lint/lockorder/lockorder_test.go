package lockorder_test

import (
	"testing"

	"maskedspgemm/internal/lint/linttest"
	"maskedspgemm/internal/lint/lockorder"
)

// TestABBA is the seeded two-lock inversion inside one package; the
// diagnostic must carry both witnessing call chains.
func TestABBA(t *testing.T) {
	linttest.Run(t, linttest.TestdataDir(t), lockorder.Analyzer, "lockcycle")
}

// TestSelfDeadlock is the length-one cycle through a helper call.
func TestSelfDeadlock(t *testing.T) {
	linttest.Run(t, linttest.TestdataDir(t), lockorder.Analyzer, "lockself")
}

// TestCrossPackage closes a cycle across a package boundary: one edge
// exists only because lockcross2's FuncLockSummary fact was exported
// while analyzing the dependency and consumed by the whole-program
// pass.
func TestCrossPackage(t *testing.T) {
	linttest.Run(t, linttest.TestdataDir(t), lockorder.Analyzer, "lockcross2", "lockcross1")
}

// TestConsistentOrderClean: a DAG-shaped lock graph and a documented
// same-type nesting produce no findings.
func TestConsistentOrderClean(t *testing.T) {
	linttest.Run(t, linttest.TestdataDir(t), lockorder.Analyzer, "lockok")
}
