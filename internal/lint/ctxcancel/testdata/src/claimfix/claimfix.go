// Package claimfix is the ctxcancel fixture: tile-claim loops with and
// without a stop flag in scope, polling and non-polling.
package claimfix

import "sync/atomic"

type state struct {
	stop atomic.Bool
	next atomic.Int64
}

// claimNoFlag has no stop flag in scope: the legacy panic-propagating
// entry points are exempt by construction.
func claimNoFlag(next *atomic.Int64, n int64) {
	for {
		t := next.Add(1) - 1
		if t >= n {
			return
		}
	}
}

// goodLoop polls the stop flag between claims.
func goodLoop(st *state, n int64) {
	for {
		if st.stop.Load() {
			return
		}
		t := st.next.Add(1) - 1
		if t >= n {
			return
		}
	}
}

// badLoop claims via the shared counter but never polls.
func badLoop(st *state, n int64) {
	for { // want `tile-claim loop does not poll the stop flag between claims`
		t := st.next.Add(1) - 1
		if t >= n {
			return
		}
	}
}

func claimChunk(next *atomic.Int64) int64 { return next.Add(1) - 1 }

// badCall claims through a helper whose name marks it as a claim.
func badCall(st *state, n int64) {
	for { // want `tile-claim loop does not poll the stop flag between claims`
		if claimChunk(&st.next) >= n {
			return
		}
	}
}

// goodBoolParam gets the flag as a bare *atomic.Bool parameter.
func goodBoolParam(stop *atomic.Bool, next *atomic.Int64, n int64) {
	for {
		if stop.Load() {
			return
		}
		if next.Add(1)-1 >= n {
			return
		}
	}
}

// nestedBad: the outer loop polls, the inner claim loop does not. The
// inner loop is checked on its own and must fire.
func nestedBad(st *state, n int64) {
	for {
		if st.stop.Load() {
			return
		}
		for { // want `tile-claim loop does not poll the stop flag between claims`
			if st.next.Add(1)-1 >= n {
				return
			}
		}
	}
}

func arriveBarrier(gen *atomic.Int64, want int64) bool { return gen.Load() >= want }

// badBarrierWait spins at a wave barrier without polling the stop flag:
// a cancelled run leaves the worker parked until the stragglers arrive.
func badBarrierWait(st *state, gen int64) {
	for { // want `tile-claim loop does not poll the stop flag between claims`
		if arriveBarrier(&st.next, gen) {
			return
		}
	}
}

// goodBarrierWait polls the stop flag on every spin.
func goodBarrierWait(st *state, gen int64) {
	for {
		if st.stop.Load() {
			return
		}
		if arriveBarrier(&st.next, gen) {
			return
		}
	}
}

// noClaim loops without claiming: nothing to report even without polls.
func noClaim(st *state, n int64) int64 {
	var sum int64
	for i := int64(0); i < n; i++ {
		sum += i
	}
	st.next.Store(sum)
	return sum
}
