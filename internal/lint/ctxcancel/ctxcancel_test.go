package ctxcancel_test

import (
	"testing"

	"maskedspgemm/internal/lint/ctxcancel"
	"maskedspgemm/internal/lint/linttest"
)

func TestCtxCancel(t *testing.T) {
	linttest.Run(t, linttest.TestdataDir(t), ctxcancel.Analyzer, "claimfix")
}
