// Package ctxcancel enforces the scheduler's cooperative-cancellation
// contract: a tile-claim loop running inside a fault-contained region
// (one that has a stop flag in scope) must poll that flag between
// claims. Otherwise a cancelled context or a contained panic in one
// worker leaves the others churning through the remaining tiles — on
// the paper's 32768-tile sweeps that turns "cancel within one tile's
// latency" into "cancel whenever the run feels like finishing".
//
// A claim operation is an Add or CompareAndSwap on a sync/atomic
// integer (the shared tile counter), or a call to a function whose name
// contains "claim" (claimGuided) — or, since the wave scheduler, a name
// containing "barrier", "arrive" or "await": a worker spinning at a
// wave barrier is exactly as capable of outliving a cancelled run as
// one churning through a tile bag, so its wait loop owes the same poll.
// A stop flag is any value reachable in the enclosing declaration whose
// type is atomic.Bool, or a struct (like sched.runState) containing an
// atomic.Bool field. Loops in functions with no stop flag in scope —
// the legacy panic-propagating entry points — are exempt by
// construction.
package ctxcancel

import (
	"go/ast"
	"go/types"
	"strings"

	"maskedspgemm/internal/lint"
)

// Analyzer is the ctxcancel pass.
var Analyzer = &lint.Analyzer{
	Name: "ctxcancel",
	Doc:  "tile-claim loops with a stop flag in scope must poll it between claims",
	Run:  run,
}

func run(pass *lint.Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if !hasStopFlag(pass, fd) {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				loop, ok := n.(*ast.ForStmt)
				if !ok {
					return true
				}
				if !containsClaim(pass, loop) {
					return true
				}
				if !pollsStopFlag(pass, loop.Body) {
					pass.Reportf(loop.Pos(),
						"tile-claim loop does not poll the stop flag between claims; cancellation and panic containment stall until the loop drains")
				}
				return true
			})
		}
	}
	return nil
}

// hasStopFlag reports whether fd declares (as parameter, receiver or
// local, including in closures) a value of type atomic.Bool or a
// struct containing an atomic.Bool field.
func hasStopFlag(pass *lint.Pass, fd *ast.FuncDecl) bool {
	found := false
	ast.Inspect(fd, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := pass.TypesInfo.Defs[id]
		if obj == nil {
			return true
		}
		if v, ok := obj.(*types.Var); ok && isStopFlagType(v.Type()) {
			found = true
		}
		return true
	})
	return found
}

// isStopFlagType reports atomic.Bool, *atomic.Bool, or a (pointer to)
// struct with an atomic.Bool field.
func isStopFlagType(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if isAtomicBool(t) {
		return true
	}
	st, ok := t.Underlying().(*types.Struct)
	if !ok {
		return false
	}
	for i := 0; i < st.NumFields(); i++ {
		if isAtomicBool(st.Field(i).Type()) {
			return true
		}
	}
	return false
}

func isAtomicBool(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Bool" && obj.Pkg() != nil && obj.Pkg().Path() == "sync/atomic"
}

// containsClaim reports whether the loop body performs a claim
// operation directly (not inside a nested for loop, whose own check is
// separate).
func containsClaim(pass *lint.Pass, loop *ast.ForStmt) bool {
	claims := false
	ast.Inspect(loop.Body, func(n ast.Node) bool {
		if inner, ok := n.(*ast.ForStmt); ok && inner != loop {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch fun := call.Fun.(type) {
		case *ast.SelectorExpr:
			obj := pass.TypesInfo.Uses[fun.Sel]
			f, ok := obj.(*types.Func)
			if !ok {
				return true
			}
			name := f.Name()
			if sig, ok := f.Type().(*types.Signature); ok && sig.Recv() != nil &&
				isAtomicInteger(sig.Recv().Type()) && (name == "Add" || name == "CompareAndSwap") {
				claims = true
			}
			if claimName(name) {
				claims = true
			}
		case *ast.Ident:
			if claimName(fun.Name) {
				claims = true
			}
		}
		return true
	})
	return claims
}

// claimName reports whether a function name marks a claim-like
// operation: a tile claim, or a wave-barrier wait (barrier/arrive/
// await), whose spin loop must poll the stop flag just the same.
func claimName(name string) bool {
	n := strings.ToLower(name)
	return strings.Contains(n, "claim") || strings.Contains(n, "barrier") ||
		strings.Contains(n, "arrive") || strings.Contains(n, "await")
}

// isAtomicInteger reports sync/atomic's integer counter types.
func isAtomicInteger(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync/atomic" {
		return false
	}
	switch obj.Name() {
	case "Int32", "Int64", "Uint32", "Uint64", "Uintptr":
		return true
	}
	return false
}

// pollsStopFlag reports whether the loop body (directly, not in nested
// loops) calls Load on an atomic.Bool.
func pollsStopFlag(pass *lint.Pass, body *ast.BlockStmt) bool {
	polls := false
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fun, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		f, ok := pass.TypesInfo.Uses[fun.Sel].(*types.Func)
		if !ok || f.Name() != "Load" {
			return true
		}
		if sig, ok := f.Type().(*types.Signature); ok && sig.Recv() != nil && isAtomicBool(derefType(sig.Recv().Type())) {
			polls = true
		}
		return true
	})
	return polls
}

func derefType(t types.Type) types.Type {
	if p, ok := t.(*types.Pointer); ok {
		return p.Elem()
	}
	return t
}
