// Package atomicpad enforces the layout and access discipline of
// cache-line-padded counter blocks (//spgemm:padded structs): the
// per-worker counters that the kernel's workers update concurrently
// with Stats snapshots reading them. Two properties keep those blocks
// correct and fast, and both silently rot under ordinary edits:
//
//   - Layout: each block must span at least 128 bytes (two cache
//     lines — the adjacent-line prefetcher pulls pairs), or neighboring
//     workers false-share and the per-tile counter updates serialize
//     the whole pool. Checked via types.Sizes, so adding a field
//     without re-balancing the pad array is caught at lint time.
//   - Access: counter fields may only be touched through sync/atomic —
//     either the field is itself an atomic type (atomic.Int64) and is
//     only used as a method-call receiver, or its address is passed
//     directly to a sync/atomic function. Plain loads, stores and
//     increments are reported wherever the struct is used.
//
// Blank _ [N]byte fields are the padding and are exempt.
package atomicpad

import (
	"go/ast"
	"go/types"

	"maskedspgemm/internal/lint"
)

// Directive marks a struct as a padded atomic counter block.
const Directive = "//spgemm:padded"

// MinSize is the required struct size: two 64-byte cache lines.
const MinSize = 128

// paddedFact marks a named struct type as //spgemm:padded for
// importing packages.
type paddedFact struct{}

// Analyzer is the atomicpad pass.
var Analyzer = &lint.Analyzer{
	Name: "atomicpad",
	Doc:  "padded counter structs must span >= 128 bytes and be accessed only via sync/atomic",
	Run:  run,
}

func run(pass *lint.Pass) error {
	// Collect and validate this package's annotated structs.
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				if !lint.HasDirective(ts.Doc, Directive) && !lint.HasDirective(gd.Doc, Directive) {
					continue
				}
				obj, ok := pass.TypesInfo.Defs[ts.Name].(*types.TypeName)
				if !ok {
					continue
				}
				st, ok := obj.Type().Underlying().(*types.Struct)
				if !ok {
					pass.Reportf(ts.Name.Pos(), "%s directive on non-struct type %s", Directive, ts.Name.Name)
					continue
				}
				pass.ExportObjectFact(obj, paddedFact{})
				if size := pass.TypesSizes.Sizeof(st); size < MinSize {
					pass.Reportf(ts.Name.Pos(),
						"padded struct %s is %d bytes, want >= %d: re-balance its _ [N]byte pad so concurrent counter blocks do not false-share",
						ts.Name.Name, size, MinSize)
				}
				checkFieldTypes(pass, ts, st)
			}
		}
	}
	// Check every access to fields of annotated structs (this package's
	// and, via facts, those of already-analyzed dependencies).
	for _, file := range pass.Files {
		checkAccesses(pass, file)
	}
	return nil
}

// checkFieldTypes requires every non-padding field to be either an
// atomic type or a plain integer (whose accesses rule 2 then confines
// to sync/atomic calls).
func checkFieldTypes(pass *lint.Pass, ts *ast.TypeSpec, st *types.Struct) {
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if f.Name() == "_" {
			continue // padding
		}
		if isAtomicType(f.Type()) || isIntegerKind(f.Type()) {
			continue
		}
		pass.Reportf(ts.Name.Pos(),
			"padded struct %s field %s has type %s; counter blocks may hold only sync/atomic types, integers and _ padding",
			ts.Name.Name, f.Name(), f.Type())
	}
}

// isAtomicType reports whether t is one of sync/atomic's typed values.
func isAtomicType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync/atomic"
}

func isIntegerKind(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}

// isPaddedField resolves sel to (field, owning padded struct) if the
// selector reads or writes a field of an annotated struct.
func isPaddedField(pass *lint.Pass, sel *ast.SelectorExpr) (*types.Var, bool) {
	s, ok := pass.TypesInfo.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return nil, false
	}
	recv := s.Recv()
	if p, ok := recv.(*types.Pointer); ok {
		recv = p.Elem()
	}
	named, ok := recv.(*types.Named)
	if !ok {
		return nil, false
	}
	if _, ok := pass.ObjectFact(named.Obj()).(paddedFact); !ok {
		return nil, false
	}
	f, _ := s.Obj().(*types.Var)
	return f, f != nil
}

// checkAccesses walks one file and reports every touch of a padded
// struct's counter field that is not mediated by sync/atomic.
func checkAccesses(pass *lint.Pass, file *ast.File) {
	// allowed collects selector nodes used legitimately: receivers of
	// method calls on atomic-typed fields, and &field arguments passed
	// directly to sync/atomic functions.
	allowed := map[ast.Node]bool{}
	ast.Inspect(file, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		// x.f.Add(1): the method's receiver x.f is an atomic-typed field.
		if fun, ok := call.Fun.(*ast.SelectorExpr); ok {
			if recv, ok := ast.Unparen(fun.X).(*ast.SelectorExpr); ok {
				if f, ok := isPaddedField(pass, recv); ok && isAtomicType(f.Type()) {
					allowed[recv] = true
				}
			}
		}
		// atomic.AddInt64(&x.f, 1): address-of-field argument to sync/atomic.
		if calleeIsSyncAtomic(pass, call) {
			for _, arg := range call.Args {
				if ue, ok := ast.Unparen(arg).(*ast.UnaryExpr); ok {
					if sel, ok := ast.Unparen(ue.X).(*ast.SelectorExpr); ok {
						if _, ok := isPaddedField(pass, sel); ok {
							allowed[sel] = true
						}
					}
				}
			}
		}
		return true
	})
	ast.Inspect(file, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		f, ok := isPaddedField(pass, sel)
		if !ok || allowed[sel] || f.Name() == "_" {
			return true
		}
		if isAtomicType(f.Type()) {
			pass.Reportf(sel.Sel.Pos(),
				"field %s of padded counter struct used outside an atomic method call; use %s.Add/Load/Store",
				f.Name(), sel.Sel.Name)
			return true
		}
		pass.Reportf(sel.Sel.Pos(),
			"non-atomic access to field %s of padded counter struct; pass &%s to a sync/atomic function",
			f.Name(), sel.Sel.Name)
		return true
	})
}

// calleeIsSyncAtomic reports whether call targets a sync/atomic
// package function.
func calleeIsSyncAtomic(pass *lint.Pass, call *ast.CallExpr) bool {
	fun, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	obj := pass.TypesInfo.Uses[fun.Sel]
	if obj == nil || obj.Pkg() == nil {
		return false
	}
	return obj.Pkg().Path() == "sync/atomic"
}
