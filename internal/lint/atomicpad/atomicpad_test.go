package atomicpad_test

import (
	"testing"

	"maskedspgemm/internal/lint/atomicpad"
	"maskedspgemm/internal/lint/linttest"
)

func TestAtomicPad(t *testing.T) {
	linttest.Run(t, linttest.TestdataDir(t), atomicpad.Analyzer, "padfix", "paduser")
}
