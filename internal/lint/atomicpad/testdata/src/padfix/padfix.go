// Package padfix is the atomicpad fixture: padded counter blocks with
// correct and incorrect layout, field types, and access discipline.
package padfix

import "sync/atomic"

// Good is a well-formed padded counter block.
//
//spgemm:padded
type Good struct {
	A, B atomic.Int64
	_    [128 - 2*8]byte
}

// Mixed uses plain integers whose accesses must go through sync/atomic.
//
//spgemm:padded
type Mixed struct {
	N int64
	_ [128 - 8]byte
}

// Small forgot the pad array entirely.
//
//spgemm:padded
type Small struct { // want `padded struct Small is 8 bytes, want >= 128`
	N atomic.Int64
}

// BadField holds a non-counter type.
//
//spgemm:padded
type BadField struct { // want `padded struct BadField field Name has type string`
	Name string
	_    [128]byte
}

//spgemm:padded
type NotStruct int // want `directive on non-struct type NotStruct`

func use(g *Good, m *Mixed) int64 {
	g.A.Add(1)
	v := g.B.Load()
	p := &g.A // want `field A of padded counter struct used outside an atomic method call`
	_ = p
	atomic.AddInt64(&m.N, 1)
	m.N++ // want `non-atomic access to field N of padded counter struct`
	return atomic.LoadInt64(&m.N) + v
}
