// Package paduser exercises the fact path: padded structs imported
// from another package keep their access discipline.
package paduser

import (
	"sync/atomic"

	"padfix"
)

func bump(g *padfix.Good, m *padfix.Mixed) int64 {
	g.A.Add(1)
	atomic.AddInt64(&m.N, 1)
	return m.N // want `non-atomic access to field N of padded counter struct`
}
