package lint_test

import (
	"go/ast"
	"go/types"
	"testing"

	"maskedspgemm/internal/lint"
	"maskedspgemm/internal/lint/linttest"
)

// summaries computes the lock summary of every declared function in
// pkg, keyed by declaration name.
func summaries(pkg *lint.Package) map[string]*lint.FuncLockSummary {
	out := map[string]*lint.FuncLockSummary{}
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok {
				out[fd.Name.Name] = lint.ComputeLockSummary(pkg.Info, pkg.ImportPath, fd)
			}
		}
	}
	return out
}

func heldIDs(held []lint.LockID) []string {
	out := make([]string, len(held))
	for i, id := range held {
		out[i] = string(id)
	}
	return out
}

func TestComputeLockSummary(t *testing.T) {
	prog := linttest.Load(t, linttest.TestdataDir(t), "locksum")
	sums := summaries(prog.Packages[0])

	// fill touches no locks: sparse summaries stay nil.
	if sums["fill"] != nil {
		t.Errorf("fill: want nil summary, got %+v", sums["fill"])
	}

	// Guarded: one acquisition with nothing held, and only the call made
	// under the lock recorded.
	g := sums["Guarded"]
	if g == nil {
		t.Fatal("Guarded: no summary")
	}
	if len(g.Acquires) != 1 || g.Acquires[0].ID != "locksum.Box.mu" || len(g.Acquires[0].Held) != 0 {
		t.Errorf("Guarded.Acquires = %+v, want one bare locksum.Box.mu", g.Acquires)
	}
	if len(g.Calls) != 1 || g.Calls[0].Callee.Name() != "fill" {
		t.Fatalf("Guarded.Calls = %+v, want exactly the locked fill call", g.Calls)
	}
	if ids := heldIDs(g.Calls[0].Held); len(ids) != 1 || ids[0] != "locksum.Box.mu" {
		t.Errorf("Guarded locked call held = %v, want [locksum.Box.mu]", ids)
	}

	// Deferred: the deferred unlock keeps the lock held across the call.
	d := sums["Deferred"]
	if d == nil || len(d.Calls) != 1 || len(d.Calls[0].Held) != 1 {
		t.Errorf("Deferred: want fill recorded under the deferred-held lock, got %+v", d)
	}

	// Nested: second acquisition sees the package-level gate held.
	n := sums["Nested"]
	if n == nil || len(n.Acquires) != 2 {
		t.Fatalf("Nested: want 2 acquisitions, got %+v", n)
	}
	if n.Acquires[0].ID != "locksum.gate" || len(n.Acquires[0].Held) != 0 {
		t.Errorf("Nested.Acquires[0] = %+v, want bare locksum.gate", n.Acquires[0])
	}
	if n.Acquires[1].ID != "locksum.Box.mu" {
		t.Errorf("Nested.Acquires[1].ID = %s, want locksum.Box.mu", n.Acquires[1].ID)
	}
	if ids := heldIDs(n.Acquires[1].Held); len(ids) != 1 || ids[0] != "locksum.gate" {
		t.Errorf("Nested.Acquires[1].Held = %v, want [locksum.gate]", ids)
	}

	// Spawn: the call inside the go statement runs lock-free and is not
	// recorded; the plain call after it is.
	s := sums["Spawn"]
	if s == nil || len(s.Calls) != 1 {
		t.Fatalf("Spawn: want exactly one locked call (the goroutine's is lock-free), got %+v", s)
	}

	// Local: a function-local mutex is named by its enclosing function.
	l := sums["Local"]
	if l == nil || len(l.Acquires) != 1 || l.Acquires[0].ID != "locksum.Local.mu" {
		t.Errorf("Local = %+v, want one acquisition of locksum.Local.mu", l)
	}
}

// TestLockFactsCrossPackage is the facts round-trip: a FuncLockSummary
// exported while analyzing locksum must be readable in the
// whole-program pass through the *types.Func object resolved from
// locksumuse's call site — the same object identity, because all
// packages share one type-checked graph.
func TestLockFactsCrossPackage(t *testing.T) {
	prog := linttest.Load(t, linttest.TestdataDir(t), "locksum", "locksumuse")
	checked := false
	probe := &lint.Analyzer{
		Name: "lockprobe",
		Doc:  "test probe",
		Run: func(pass *lint.Pass) error {
			for _, file := range pass.Files {
				for _, decl := range file.Decls {
					fd, ok := decl.(*ast.FuncDecl)
					if !ok {
						continue
					}
					fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
					if !ok {
						continue
					}
					if sum := lint.ComputeLockSummary(pass.TypesInfo, pass.Pkg.Path(), fd); sum != nil {
						pass.ExportObjectFact(fn, sum)
					}
				}
			}
			return nil
		},
		RunProgram: func(pass *lint.ProgramPass) error {
			// Resolve Guarded from the importing package's call site.
			var use *lint.Package
			for _, pkg := range pass.Prog.Packages {
				if pkg.ImportPath == "locksumuse" {
					use = pkg
				}
			}
			if use == nil {
				t.Fatal("locksumuse not loaded")
			}
			for _, file := range use.Files {
				ast.Inspect(file, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok {
						return true
					}
					fn := lint.CalleeFunc(use.Info, call)
					if fn == nil || fn.Name() != "Guarded" {
						return true
					}
					sum, ok := pass.ObjectFact(fn).(*lint.FuncLockSummary)
					if !ok {
						t.Fatal("no FuncLockSummary fact on locksum.(*Box).Guarded via locksumuse's object")
					}
					if len(sum.Acquires) != 1 || sum.Acquires[0].ID != "locksum.Box.mu" {
						t.Errorf("round-tripped summary = %+v, want one acquisition of locksum.Box.mu", sum)
					}
					checked = true
					return true
				})
			}
			// AllObjectFacts must surface the same summaries.
			found := false
			for obj, f := range pass.AllObjectFacts() {
				if obj.Name() == "Guarded" {
					if _, ok := f.(*lint.FuncLockSummary); ok {
						found = true
					}
				}
			}
			if !found {
				t.Error("AllObjectFacts is missing Guarded's summary")
			}
			return nil
		},
	}
	if _, err := lint.Run(prog, []*lint.Analyzer{probe}); err != nil {
		t.Fatalf("running probe: %v", err)
	}
	if !checked {
		t.Fatal("probe never reached the cross-package fact check")
	}
}
