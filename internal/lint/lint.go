// Package lint is a minimal, dependency-free analysis framework in the
// shape of golang.org/x/tools/go/analysis, built for this repository's
// custom analyzers (cmd/spgemm-lint). The container this project builds
// in has no module proxy access, so the framework reimplements the
// small slice of the x/tools driver the analyzers need on the standard
// library alone: package loading (go list + go/types), per-package
// passes, cross-package object facts, and //lint:ignore suppression.
//
// The Analyzer/Pass surface deliberately mirrors go/analysis so the
// suite can be ported to the real multichecker by swapping imports if
// x/tools ever becomes available.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one static check. Run is invoked once per package, in
// dependency order, so facts exported while analyzing a package are
// visible when its importers are analyzed. RunProgram, when set, is
// invoked once after every per-package pass, with the whole program,
// the cross-package call graph and every exported fact in scope — the
// whole-program layer the concurrency-contract analyzers build on.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in //lint:ignore
	// directives. Lower-case, no spaces.
	Name string
	// Doc is the one-paragraph description shown by -help.
	Doc string
	// Run performs the per-package check, reporting findings via
	// pass.Reportf and publishing summaries via pass.ExportObjectFact.
	// Optional for analyzers that only need the whole-program pass.
	Run func(pass *Pass) error
	// RunProgram performs the whole-program check once, after Run has
	// seen every package. Optional.
	RunProgram func(pass *ProgramPass) error
}

// Diagnostic is one finding, anchored to a source position.
type Diagnostic struct {
	Pos      token.Pos
	Message  string
	Analyzer string
}

// Pass carries one package's parsed and type-checked state to an
// analyzer, mirroring analysis.Pass.
type Pass struct {
	Analyzer   *Analyzer
	Fset       *token.FileSet
	Files      []*ast.File
	Pkg        *types.Package
	TypesInfo  *types.Info
	TypesSizes types.Sizes

	diags *[]Diagnostic
	facts *factStore
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      pos,
		Message:  fmt.Sprintf(format, args...),
		Analyzer: p.Analyzer.Name,
	})
}

// ExportObjectFact attaches a fact to obj, visible to this analyzer's
// later passes over importing packages (objects are shared because all
// packages in a run are type-checked through one importer).
func (p *Pass) ExportObjectFact(obj types.Object, fact any) {
	p.facts.set(p.Analyzer.Name, obj, fact)
}

// ObjectFact returns the fact previously attached to obj by this
// analyzer, or nil.
func (p *Pass) ObjectFact(obj types.Object) any {
	return p.facts.get(p.Analyzer.Name, obj)
}

// ProgramPass carries the whole type-checked program to an analyzer's
// RunProgram hook: every module package, the cross-package call graph,
// and read access to the facts the analyzer's per-package passes
// exported.
type ProgramPass struct {
	Analyzer *Analyzer
	Prog     *Program
	// Graph is the program's call graph, built once per Run and shared
	// by every whole-program analyzer.
	Graph *CallGraph

	diags *[]Diagnostic
	facts *factStore
}

// Reportf records a finding at pos.
func (p *ProgramPass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      pos,
		Message:  fmt.Sprintf(format, args...),
		Analyzer: p.Analyzer.Name,
	})
}

// ObjectFact returns the fact the analyzer's per-package passes
// attached to obj, or nil.
func (p *ProgramPass) ObjectFact(obj types.Object) any {
	return p.facts.get(p.Analyzer.Name, obj)
}

// AllObjectFacts returns every (object, fact) pair the analyzer's
// per-package passes exported, in unspecified order.
func (p *ProgramPass) AllObjectFacts() map[types.Object]any {
	return p.facts.all(p.Analyzer.Name)
}

// factStore holds cross-package facts for all analyzers of one run.
type factStore struct {
	m map[factKey]any
}

type factKey struct {
	analyzer string
	obj      types.Object
}

func newFactStore() *factStore { return &factStore{m: map[factKey]any{}} }

func (s *factStore) set(analyzer string, obj types.Object, fact any) {
	s.m[factKey{analyzer, obj}] = fact
}

func (s *factStore) get(analyzer string, obj types.Object) any {
	return s.m[factKey{analyzer, obj}]
}

func (s *factStore) all(analyzer string) map[types.Object]any {
	out := map[types.Object]any{}
	for k, v := range s.m {
		if k.analyzer == analyzer {
			out[k.obj] = v
		}
	}
	return out
}

// Run executes the analyzers over every package of prog in dependency
// order and returns the surviving diagnostics sorted by position.
// Findings carrying a valid //lint:ignore directive are dropped; an
// ignore directive without a reason is itself reported.
func Run(prog *Program, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	facts := newFactStore()
	for _, a := range analyzers {
		if a.Run == nil {
			continue
		}
		for _, pkg := range prog.Packages {
			pass := &Pass{
				Analyzer:   a,
				Fset:       prog.Fset,
				Files:      pkg.Files,
				Pkg:        pkg.Types,
				TypesInfo:  pkg.Info,
				TypesSizes: prog.Sizes,
				diags:      &diags,
				facts:      facts,
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.ImportPath, err)
			}
		}
	}
	// Whole-program passes run after every package has been analyzed,
	// sharing one call graph (built lazily: per-package-only suites pay
	// nothing for it).
	var graph *CallGraph
	for _, a := range analyzers {
		if a.RunProgram == nil {
			continue
		}
		if graph == nil {
			graph = BuildCallGraph(prog)
		}
		pass := &ProgramPass{
			Analyzer: a,
			Prog:     prog,
			Graph:    graph,
			diags:    &diags,
			facts:    facts,
		}
		if err := a.RunProgram(pass); err != nil {
			return nil, fmt.Errorf("%s: whole-program pass: %w", a.Name, err)
		}
	}
	diags = Suppress(prog.Fset, allFiles(prog), diags)
	sort.Slice(diags, func(i, j int) bool {
		if diags[i].Pos != diags[j].Pos {
			return diags[i].Pos < diags[j].Pos
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
	return diags, nil
}

func allFiles(prog *Program) []*ast.File {
	var files []*ast.File
	for _, pkg := range prog.Packages {
		files = append(files, pkg.Files...)
	}
	return files
}

// ignoreDirective is one parsed //lint:ignore comment.
type ignoreDirective struct {
	analyzers []string // checks it silences; ["all"] silences everything
	reason    string
	pos       token.Pos
	used      bool
}

// Suppress filters out diagnostics covered by a //lint:ignore directive
// on the same line or the line immediately above the finding. The
// directive grammar is
//
//	//lint:ignore <check>[,<check>...] <reason>
//
// and the reason is mandatory: a reasonless directive never suppresses
// and is reported as a finding of its own.
func Suppress(fset *token.FileSet, files []*ast.File, diags []Diagnostic) []Diagnostic {
	type lineKey struct {
		file string
		line int
	}
	directives := map[lineKey]*ignoreDirective{}
	var malformed []Diagnostic
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//lint:ignore")
				if !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				fields := strings.Fields(text)
				d := &ignoreDirective{pos: c.Pos()}
				if len(fields) >= 1 {
					d.analyzers = strings.Split(fields[0], ",")
				}
				if len(fields) >= 2 {
					d.reason = strings.Join(fields[1:], " ")
				}
				if len(d.analyzers) == 0 || d.reason == "" {
					malformed = append(malformed, Diagnostic{
						Pos:      c.Pos(),
						Message:  "malformed //lint:ignore: want \"//lint:ignore <check>[,<check>] <reason>\" (the reason is required)",
						Analyzer: "lintdirective",
					})
					continue
				}
				directives[lineKey{pos.Filename, pos.Line}] = d
			}
		}
	}
	var kept []Diagnostic
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		dir := directives[lineKey{pos.Filename, pos.Line}]
		if dir == nil {
			dir = directives[lineKey{pos.Filename, pos.Line - 1}]
		}
		if dir != nil && dir.matches(d.Analyzer) {
			dir.used = true
			continue
		}
		kept = append(kept, d)
	}
	return append(kept, malformed...)
}

func (d *ignoreDirective) matches(analyzer string) bool {
	for _, a := range d.analyzers {
		if a == analyzer || a == "all" {
			return true
		}
	}
	return false
}

// HasDirective reports whether the comment group contains the given
// machine directive (e.g. "//spgemm:hotpath"). Directives follow the
// standard Go convention: no space after //, anywhere in the group.
func HasDirective(doc *ast.CommentGroup, directive string) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if c.Text == directive || strings.HasPrefix(c.Text, directive+" ") {
			return true
		}
	}
	return false
}
