package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// This file is the lockset half of the whole-program layer: a
// flow-ordered, lint-grade dataflow over one function body that tracks
// which mutexes are held at every acquisition and every outgoing call.
// Per-package passes compute a FuncLockSummary per declared function
// and export it as an object fact; a whole-program pass then combines
// the summaries with the call graph into a global lock-acquisition
// graph (see the lockorder analyzer).
//
// The abstraction is the standard static one: a lock is identified by
// its declaration site — a field of a named type ("pkg.Type.field"), a
// package-level var ("pkg.var"), or a function-local var
// ("pkg.func.var") — so two instances of the same type share an
// identity. That over-approximates aliasing (locking a.mu then b.mu of
// two distinct engines reports the same edge as a self-nesting), which
// is the correct direction for a deadlock lint: a program whose lock
// order is only safe because two same-typed locks are provably distinct
// instances is relying on an invariant no future edit is checked
// against.
//
// Precision notes, all deliberately conservative:
//   - Branches are analyzed with a copy of the held set and do not
//     merge back, so a Lock inside an if-body is not considered held
//     after the branch. A function that conditionally leaks a lock past
//     a branch is beyond this lint's scope.
//   - defer mu.Unlock() keeps the lock in the held set until function
//     exit — exactly the window in which calls can deadlock.
//   - Function literals are walked with an empty held set (they run at
//     an unknown time) but their own acquisitions and calls are
//     attributed to the enclosing declaration.
//   - Calls inside go statements are recorded with an empty held set:
//     the spawned goroutine does not inherit the spawner's locks.

// LockID names one lock by declaration site, program-wide.
type LockID string

// LockAcq is one acquisition site: the lock taken and the locks already
// held when it was taken.
type LockAcq struct {
	ID   LockID
	Pos  token.Pos
	Held []LockID
}

// LockedCall is one outgoing call made while at least zero locks are
// held. Callee is nil for calls through function values.
type LockedCall struct {
	Callee *types.Func
	Pos    token.Pos
	Held   []LockID
}

// FuncLockSummary is the per-function lockset fact the lockorder
// analyzer exports: every acquisition with its held-before set, and
// every statically resolved call with the locks held across it.
type FuncLockSummary struct {
	Acquires []LockAcq
	Calls    []LockedCall
}

// lockWalker threads the held set through one declaration.
type lockWalker struct {
	info    *types.Info
	pkgPath string
	fnName  string
	sum     *FuncLockSummary
	// pending holds function literal bodies to walk with a fresh held
	// set once the main body is done.
	pending []*ast.FuncLit
	visited map[*ast.FuncLit]bool
}

// ComputeLockSummary runs the lockset dataflow over one declared
// function. Returns nil when the body acquires no locks and makes no
// calls under a lock (the common case — keeps fact storage sparse).
func ComputeLockSummary(info *types.Info, pkgPath string, fd *ast.FuncDecl) *FuncLockSummary {
	if fd.Body == nil {
		return nil
	}
	w := &lockWalker{
		info:    info,
		pkgPath: pkgPath,
		fnName:  fd.Name.Name,
		sum:     &FuncLockSummary{},
		visited: map[*ast.FuncLit]bool{},
	}
	w.walkBlock(fd.Body, nil)
	for len(w.pending) > 0 {
		lit := w.pending[0]
		w.pending = w.pending[1:]
		w.walkBlock(lit.Body, nil)
	}
	if len(w.sum.Acquires) == 0 && len(w.sum.Calls) == 0 {
		return nil
	}
	return w.sum
}

// walkBlock walks stmts in source order, threading held.
func (w *lockWalker) walkBlock(block *ast.BlockStmt, held []LockID) []LockID {
	if block == nil {
		return held
	}
	for _, s := range block.List {
		held = w.walkStmt(s, held)
	}
	return held
}

func (w *lockWalker) walkStmt(s ast.Stmt, held []LockID) []LockID {
	switch s := s.(type) {
	case *ast.ExprStmt:
		return w.walkExpr(s.X, held, false)
	case *ast.DeferStmt:
		if id, kind := w.lockOp(s.Call); kind == opUnlock {
			// Released at exit: the lock stays held for the rest of the
			// body, which is the window the dataflow must see.
			_ = id
			return held
		}
		return w.walkExpr(s.Call, held, false)
	case *ast.GoStmt:
		// The goroutine runs without the spawner's locks; its call (and
		// any literal body) is analyzed lock-free. The spawner's held
		// set is unaffected.
		w.walkExpr(s.Call, nil, false)
		return held
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			held = w.walkExpr(e, held, false)
		}
		for _, e := range s.Lhs {
			held = w.walkExpr(e, held, false)
		}
		return held
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			held = w.walkExpr(e, held, false)
		}
		return held
	case *ast.IfStmt:
		if s.Init != nil {
			held = w.walkStmt(s.Init, held)
		}
		held = w.walkExpr(s.Cond, held, false)
		w.walkBlock(s.Body, copyHeld(held))
		if s.Else != nil {
			w.walkStmt(s.Else, copyHeld(held))
		}
		return held
	case *ast.BlockStmt:
		return w.walkBlock(s, held)
	case *ast.ForStmt:
		if s.Init != nil {
			held = w.walkStmt(s.Init, held)
		}
		if s.Cond != nil {
			held = w.walkExpr(s.Cond, held, false)
		}
		w.walkBlock(s.Body, copyHeld(held))
		return held
	case *ast.RangeStmt:
		held = w.walkExpr(s.X, held, false)
		w.walkBlock(s.Body, copyHeld(held))
		return held
	case *ast.SwitchStmt:
		if s.Init != nil {
			held = w.walkStmt(s.Init, held)
		}
		if s.Tag != nil {
			held = w.walkExpr(s.Tag, held, false)
		}
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				h := copyHeld(held)
				for _, e := range cc.List {
					h = w.walkExpr(e, h, false)
				}
				for _, st := range cc.Body {
					h = w.walkStmt(st, h)
				}
			}
		}
		return held
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			held = w.walkStmt(s.Init, held)
		}
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				h := copyHeld(held)
				for _, st := range cc.Body {
					h = w.walkStmt(st, h)
				}
			}
		}
		return held
	case *ast.SelectStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				h := copyHeld(held)
				if cc.Comm != nil {
					h = w.walkStmt(cc.Comm, h)
				}
				for _, st := range cc.Body {
					h = w.walkStmt(st, h)
				}
			}
		}
		return held
	case *ast.LabeledStmt:
		return w.walkStmt(s.Stmt, held)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						held = w.walkExpr(v, held, false)
					}
				}
			}
		}
		return held
	case *ast.SendStmt:
		held = w.walkExpr(s.Value, held, false)
		return w.walkExpr(s.Chan, held, false)
	case *ast.IncDecStmt:
		return w.walkExpr(s.X, held, false)
	default:
		return held
	}
}

// walkExpr scans one expression for calls (in evaluation order is not
// attempted; source order is close enough for a lint) and function
// literals.
func (w *lockWalker) walkExpr(e ast.Expr, held []LockID, _ bool) []LockID {
	if e == nil {
		return held
	}
	var walk func(e ast.Expr)
	walk = func(e ast.Expr) {
		switch e := e.(type) {
		case *ast.FuncLit:
			w.enqueue(e)
		case *ast.CallExpr:
			// Arguments first (they evaluate before the call), then the
			// call itself mutates held via the closure below.
			for _, a := range e.Args {
				walk(a)
			}
			if fe, ok := e.Fun.(*ast.SelectorExpr); ok {
				walk(fe.X)
			}
			held = w.walkCall(e, held)
		case *ast.ParenExpr:
			walk(e.X)
		case *ast.UnaryExpr:
			walk(e.X)
		case *ast.BinaryExpr:
			walk(e.X)
			walk(e.Y)
		case *ast.SelectorExpr:
			walk(e.X)
		case *ast.IndexExpr:
			walk(e.X)
			walk(e.Index)
		case *ast.SliceExpr:
			walk(e.X)
		case *ast.StarExpr:
			walk(e.X)
		case *ast.CompositeLit:
			for _, el := range e.Elts {
				walk(el)
			}
		case *ast.KeyValueExpr:
			walk(e.Value)
		case *ast.TypeAssertExpr:
			walk(e.X)
		}
	}
	walk(e)
	return held
}

// walkCall classifies one call: a lock acquisition, a release, or an
// ordinary call recorded with the current held set.
func (w *lockWalker) walkCall(call *ast.CallExpr, held []LockID) []LockID {
	if id, kind := w.lockOp(call); kind != opNone {
		switch kind {
		case opLock:
			w.sum.Acquires = append(w.sum.Acquires, LockAcq{
				ID:   id,
				Pos:  call.Pos(),
				Held: copyHeld(held),
			})
			return append(held, id)
		case opUnlock:
			return removeHeld(held, id)
		}
	}
	// Only calls made under at least one lock go into the summary: the
	// lock-free call edges the transitive analysis also needs are
	// already in the call graph, so storing them again here would just
	// duplicate it into every fact.
	if len(held) == 0 {
		return held
	}
	callee := CalleeFunc(w.info, call)
	if callee == nil {
		return held
	}
	w.sum.Calls = append(w.sum.Calls, LockedCall{
		Callee: callee,
		Pos:    call.Pos(),
		Held:   copyHeld(held),
	})
	return held
}

type lockOpKind int

const (
	opNone lockOpKind = iota
	opLock
	opUnlock
)

// lockOp recognizes mu.Lock/RLock/TryLock and mu.Unlock/RUnlock on
// sync.Mutex, sync.RWMutex and types embedding them, returning the
// lock's identity. TryLock is treated as an acquisition (the held set
// over-approximates the success path, which is the one that orders
// locks).
func (w *lockWalker) lockOp(call *ast.CallExpr) (LockID, lockOpKind) {
	fun, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", opNone
	}
	fn, _ := w.info.Uses[fun.Sel].(*types.Func)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", opNone
	}
	recv := fn.Type().(*types.Signature).Recv()
	if recv == nil {
		return "", opNone
	}
	var kind lockOpKind
	switch fn.Name() {
	case "Lock", "RLock", "TryLock", "TryRLock":
		kind = opLock
	case "Unlock", "RUnlock":
		kind = opUnlock
	default:
		return "", opNone
	}
	return w.lockIDOf(fun.X), kind
}

// lockIDOf names the lock value expr by declaration site.
func (w *lockWalker) lockIDOf(e ast.Expr) LockID {
	e = ast.Unparen(e)
	switch e := e.(type) {
	case *ast.SelectorExpr:
		if sel, ok := w.info.Selections[e]; ok && sel.Kind() == types.FieldVal {
			recv := sel.Recv()
			if p, ok := recv.(*types.Pointer); ok {
				recv = p.Elem()
			}
			if named, ok := recv.(*types.Named); ok {
				obj := named.Obj()
				return LockID(fmt.Sprintf("%s.%s.%s", pkgPathOf(obj.Pkg()), obj.Name(), sel.Obj().Name()))
			}
			return LockID(fmt.Sprintf("%s.%s.%s", w.pkgPath, w.fnName, sel.Obj().Name()))
		}
		// Package-qualified var: pkg.mu.Lock().
		if obj, ok := w.info.Uses[e.Sel].(*types.Var); ok {
			return lockIDOfVar(obj, w.pkgPath, w.fnName)
		}
	case *ast.Ident:
		if obj, ok := w.info.Uses[e].(*types.Var); ok {
			return lockIDOfVar(obj, w.pkgPath, w.fnName)
		}
	case *ast.UnaryExpr:
		return w.lockIDOf(e.X)
	case *ast.StarExpr:
		return w.lockIDOf(e.X)
	}
	return LockID(fmt.Sprintf("%s.%s.<anonymous lock>", w.pkgPath, w.fnName))
}

// lockIDOfVar names a mutex-typed variable: package-level vars by
// package, locals by enclosing function (so same-named locals of
// different functions stay distinct). An embedded-mutex receiver
// (e.Lock() on a struct embedding sync.Mutex) resolves here too, via
// the receiver variable, and is named by its type instead.
func lockIDOfVar(v *types.Var, pkgPath, fnName string) LockID {
	// A receiver or plain value whose type is a named struct embedding
	// the mutex: name the lock by the type, not the variable, so every
	// method of the type agrees. Types declared in sync itself (a bare
	// sync.Mutex/RWMutex variable) are exempt — those are named by the
	// variable below, or every plain mutex var in the program would
	// collapse into one identity.
	t := v.Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if named, ok := t.(*types.Named); ok && pkgPathOf(named.Obj().Pkg()) != "sync" {
		if _, isStruct := named.Underlying().(*types.Struct); isStruct {
			obj := named.Obj()
			return LockID(fmt.Sprintf("%s.%s.(embedded)", pkgPathOf(obj.Pkg()), obj.Name()))
		}
	}
	if v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
		return LockID(fmt.Sprintf("%s.%s", pkgPathOf(v.Pkg()), v.Name()))
	}
	return LockID(fmt.Sprintf("%s.%s.%s", pkgPath, fnName, v.Name()))
}

func pkgPathOf(p *types.Package) string {
	if p == nil {
		return "_"
	}
	return p.Path()
}

func (w *lockWalker) enqueue(lit *ast.FuncLit) {
	if !w.visited[lit] {
		w.visited[lit] = true
		w.pending = append(w.pending, lit)
	}
}

func copyHeld(held []LockID) []LockID {
	if len(held) == 0 {
		return nil
	}
	out := make([]LockID, len(held))
	copy(out, held)
	return out
}

func removeHeld(held []LockID, id LockID) []LockID {
	for i := len(held) - 1; i >= 0; i-- {
		if held[i] == id {
			return append(held[:i:i], held[i+1:]...)
		}
	}
	return held
}
