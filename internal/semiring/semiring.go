// Package semiring defines the algebraic structures the GraphBLAS-style
// kernels compute over. GraphBLAS permits any semiring in place of
// (+, ×) (paper §II-A); the kernels in internal/core are generic over a
// Semiring type parameter instantiated with one of the zero-size structs
// below, so each (semiring, value-type) pair compiles to a specialized,
// fully inlined kernel with no function-pointer indirection — the Go
// equivalent of the C++ template instantiation GrB relies on.
package semiring

import "maskedspgemm/internal/sparse"

// Semiring is the operation set for C = M ⊙ (A ⊗.⊕ B). Plus is the
// additive monoid (accumulation), Times the multiplicative operation,
// and Zero the additive identity used to initialize accumulator slots.
//
// Implementations must be stateless; kernels copy them freely across
// goroutines.
type Semiring[T sparse.Number] interface {
	Plus(x, y T) T
	Times(x, y T) T
	Zero() T
}

// PlusTimes is the arithmetic (+, ×) semiring — the default GrB_PLUS_TIMES.
type PlusTimes[T sparse.Number] struct{}

func (PlusTimes[T]) Plus(x, y T) T  { return x + y }
func (PlusTimes[T]) Times(x, y T) T { return x * y }
func (PlusTimes[T]) Zero() T        { var z T; return z }

// PlusPair is the (+, pair) semiring: Times ignores its operands and
// yields 1. Triangle counting uses it to count structural matches
// without touching the value streams of A and B — one of the ablation
// points called out in DESIGN.md §5.
type PlusPair[T sparse.Number] struct{}

func (PlusPair[T]) Plus(x, y T) T { return x + y }
func (PlusPair[T]) Times(T, T) T  { return 1 }
func (PlusPair[T]) Zero() T       { var z T; return z }

// PlusSecond is the (+, second) semiring: Times returns its second
// operand. Used by BFS-style traversals where only B's values matter.
type PlusSecond[T sparse.Number] struct{}

func (PlusSecond[T]) Plus(x, y T) T  { return x + y }
func (PlusSecond[T]) Times(_, y T) T { return y }
func (PlusSecond[T]) Zero() T        { var z T; return z }

// MinPlus is the tropical semiring (min, +) over a numeric type; Zero is
// the largest representable value acting as +∞. Shortest-path style
// computations use it.
type MinPlus[T sparse.Number] struct{ Inf T }

func (s MinPlus[T]) Plus(x, y T) T {
	if x < y {
		return x
	}
	return y
}
func (s MinPlus[T]) Times(x, y T) T { return x + y }
func (s MinPlus[T]) Zero() T        { return s.Inf }

// MinFirst is the (min, first) semiring: Plus keeps the minimum, Times
// passes through its first operand — the input-vector value. Label
// propagation (connected components) uses it to push each vertex's
// label to its neighbors and keep the smallest.
type MinFirst[T sparse.Number] struct{ Inf T }

func (s MinFirst[T]) Plus(x, y T) T {
	if x < y {
		return x
	}
	return y
}
func (s MinFirst[T]) Times(x, _ T) T { return x }
func (s MinFirst[T]) Zero() T        { return s.Inf }

// OrAnd is the Boolean (∨, ∧) semiring encoded over a numeric type:
// nonzero is true. BFS frontier expansion uses it.
type OrAnd[T sparse.Number] struct{}

func (OrAnd[T]) Plus(x, y T) T {
	if x != 0 || y != 0 {
		return 1
	}
	return 0
}
func (OrAnd[T]) Times(x, y T) T {
	if x != 0 && y != 0 {
		return 1
	}
	return 0
}
func (OrAnd[T]) Zero() T { var z T; return z }
