package semiring

import (
	"math"
	"testing"
	"testing/quick"
)

// checkSemiringLaws verifies the semiring axioms on sampled values:
// Plus associativity/commutativity, Zero as additive identity, and
// Times distributing over Plus (where exact arithmetic permits).
func checkSemiringLaws[T int64 | float64](t *testing.T, name string, s Semiring[T], exact bool) {
	t.Helper()
	f := func(a, b, c int16) bool {
		x, y, z := T(a), T(b), T(c)
		if s.Plus(x, y) != s.Plus(y, x) {
			return false
		}
		if s.Plus(s.Plus(x, y), z) != s.Plus(x, s.Plus(y, z)) {
			return false
		}
		if s.Plus(x, s.Zero()) != x {
			return false
		}
		if exact {
			// x*(y+z) == x*y + x*z
			lhs := s.Times(x, s.Plus(y, z))
			rhs := s.Plus(s.Times(x, y), s.Times(x, z))
			if lhs != rhs {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Errorf("%s: %v", name, err)
	}
}

func TestPlusTimesLaws(t *testing.T) {
	checkSemiringLaws[int64](t, "PlusTimes[int64]", PlusTimes[int64]{}, true)
	checkSemiringLaws[float64](t, "PlusTimes[float64]", PlusTimes[float64]{}, false)
}

func TestMinPlusLaws(t *testing.T) {
	s := MinPlus[int64]{Inf: math.MaxInt64 / 4}
	// Distributivity holds for min-plus: x+(min(y,z)) == min(x+y, x+z).
	checkSemiringLaws[int64](t, "MinPlus[int64]", s, true)
}

func TestOrAndLaws(t *testing.T) {
	// OrAnd normalizes every result to {0,1}, so the algebraic laws hold
	// on that carrier set; test on normalized inputs.
	s := OrAnd[int64]{}
	f := func(a, b, c bool) bool {
		bit := func(v bool) int64 {
			if v {
				return 1
			}
			return 0
		}
		x, y, z := bit(a), bit(b), bit(c)
		if s.Plus(x, y) != s.Plus(y, x) || s.Plus(s.Plus(x, y), z) != s.Plus(x, s.Plus(y, z)) {
			return false
		}
		if s.Plus(x, s.Zero()) != x {
			return false
		}
		return s.Times(x, s.Plus(y, z)) == s.Plus(s.Times(x, y), s.Times(x, z))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 64}); err != nil {
		t.Error(err)
	}
}

func TestPlusPair(t *testing.T) {
	s := PlusPair[int64]{}
	if s.Times(17, -3) != 1 || s.Times(0, 0) != 1 {
		t.Error("PlusPair.Times must always yield 1")
	}
	if s.Plus(2, 3) != 5 || s.Zero() != 0 {
		t.Error("PlusPair additive monoid wrong")
	}
}

func TestPlusSecond(t *testing.T) {
	s := PlusSecond[float64]{}
	if s.Times(99, 7) != 7 {
		t.Error("PlusSecond.Times must return the second operand")
	}
}

func TestOrAndTruthTable(t *testing.T) {
	s := OrAnd[int64]{}
	cases := []struct{ x, y, or, and int64 }{
		{0, 0, 0, 0}, {0, 1, 1, 0}, {1, 0, 1, 0}, {1, 1, 1, 1}, {5, -2, 1, 1},
	}
	for _, c := range cases {
		if got := s.Plus(c.x, c.y); got != c.or {
			t.Errorf("Or(%d,%d) = %d, want %d", c.x, c.y, got, c.or)
		}
		if got := s.Times(c.x, c.y); got != c.and {
			t.Errorf("And(%d,%d) = %d, want %d", c.x, c.y, got, c.and)
		}
	}
}

func TestMinFirst(t *testing.T) {
	s := MinFirst[int64]{Inf: math.MaxInt64 / 4}
	if s.Times(7, 99) != 7 {
		t.Error("MinFirst.Times must return the first operand")
	}
	if s.Plus(3, 5) != 3 || s.Plus(5, 3) != 3 {
		t.Error("MinFirst.Plus must take the minimum")
	}
	if s.Plus(42, s.Zero()) != 42 {
		t.Error("Zero must be the additive identity (acts as +inf)")
	}
}

func TestMinPlusShortestPathStep(t *testing.T) {
	s := MinPlus[float64]{Inf: math.Inf(1)}
	// Relaxing an infinite distance with an edge weight gives the weight path.
	if got := s.Plus(s.Zero(), s.Times(3, 4)); got != 7 {
		t.Errorf("min(inf, 3+4) = %v, want 7", got)
	}
}
