package obs

import "time"

// This file is the recorder's live-telemetry tap. The Recorder's own
// counters are pull-model: a caller snapshots Stats after the fact. A
// Sink inverts that — every closed phase span, completed run and
// structured event is pushed to it as it happens, so a telemetry layer
// (internal/telemetry) can maintain rolling latency histograms and a
// black-box flight recorder without the kernel knowing it exists.
//
// The contract mirrors the rest of the package: no sink (the common
// case) costs one atomic pointer load per forwarding site, and the
// forwarding paths allocate nothing — the sink implementation must keep
// its receiving methods allocation-free too (they run on the kernel's
// span-close and event paths and are pinned by AllocsPerRun tests).

// EventKind classifies one flight-recorder event. The names are stable
// identifiers used in the flightrec/v1 JSON schema; changing one is a
// schema break.
type EventKind uint8

const (
	// EventNone is the zero, unused kind.
	EventNone EventKind = iota
	// EventRunStart marks a multiply run scope opening.
	EventRunStart
	// EventRunEnd marks a run scope ending; A is the run's total tiles,
	// B its gathered output entries.
	EventRunEnd
	// EventPhase marks a pipeline phase span closing; A is the span's
	// duration in nanoseconds.
	EventPhase
	// EventTileBatch marks tile-loop progress: A is the tile index just
	// finished, B the emitting worker's completed-tile count.
	EventTileBatch
	// EventRetry marks one retry-ladder attempt; A is 1 when the attempt
	// is a retry, B is 1 when it ran degraded.
	EventRetry
	// EventFailure marks an operation whose final attempt failed.
	EventFailure
	// EventSnapback marks the online-κ estimator snapping back to the
	// static default; A is the snapback count, B the new κ as
	// math.Float64bits.
	EventSnapback
	// EventChaos marks an injected fault firing; A is the chaos.Point,
	// B the chaos.Kind.
	EventChaos
	// EventStall marks a stall-watchdog verdict observed by the retry
	// ladder; A is the stall count.
	EventStall
	// NumEventKinds bounds the enum.
	NumEventKinds
)

var eventNames = [NumEventKinds]string{
	"none", "run_start", "run_end", "phase", "tile_batch",
	"retry", "failure", "snapback", "chaos", "stall",
}

func (k EventKind) String() string {
	if k < NumEventKinds {
		return eventNames[k]
	}
	return "unknown"
}

// EventKindByName resolves a stable event-kind identifier back to its
// enum value (false for unknown names) — the decode half of the
// flightrec/v1 schema round-trip.
func EventKindByName(name string) (EventKind, bool) {
	for k, n := range eventNames {
		if n == name {
			return EventKind(k), true
		}
	}
	return EventNone, false
}

// PhaseNone marks an event not tied to a pipeline phase.
const PhaseNone Phase = -1

// PhaseCount is the number of pipeline phases, exported so a sink can
// size per-phase state without reaching into the enum.
const PhaseCount = int(numPhases)

// Sink receives live telemetry pushed from the recorder: phase span
// durations, whole-run latencies, and structured flight-recorder
// events. Implementations must be safe for concurrent use (events
// arrive from worker goroutines) and must not allocate in these
// methods — they run on the kernel's hot record path.
type Sink interface {
	// RecordPhase receives one closed phase span's wall time.
	RecordPhase(p Phase, d time.Duration)
	// RecordRun receives one completed run's start-to-end latency.
	RecordRun(d time.Duration)
	// Event receives one structured event. runSeq is the multiply
	// sequence id (0 when the event is not scoped to a run); the
	// meaning of A and B depends on the kind.
	Event(runSeq int64, k EventKind, p Phase, a, b int64)
}

// SetSink attaches a live telemetry sink to the recorder (nil
// detaches). Safe to call concurrently with recording; the swap is
// atomic and recording sites observe it on their next crossing.
func (r *Recorder) SetSink(s Sink) {
	if r == nil {
		return
	}
	if s == nil {
		r.sink.Store(nil)
		return
	}
	r.sink.Store(&s)
}

// Sink returns the attached sink (nil when none, or on a nil recorder).
func (r *Recorder) Sink() Sink {
	if r == nil {
		return nil
	}
	if sp := r.sink.Load(); sp != nil {
		return *sp
	}
	return nil
}

// emitPhase forwards one closed phase span to the sink. Internal
// callers guarantee a non-nil receiver; the no-sink fast path is one
// atomic load.
//
//spgemm:hotpath
func (r *Recorder) emitPhase(seq int64, p Phase, d time.Duration) {
	if sp := r.sink.Load(); sp != nil {
		(*sp).RecordPhase(p, d)
		(*sp).Event(seq, EventPhase, p, int64(d), 0)
	}
}

// emitRun forwards one completed run's latency to the sink.
//
//spgemm:hotpath
func (r *Recorder) emitRun(d time.Duration) {
	if sp := r.sink.Load(); sp != nil {
		(*sp).RecordRun(d)
	}
}

// Event forwards a structured flight-recorder event not scoped to a
// run. Nil-safe; with no sink attached it is one nil check and one
// atomic load.
//
//spgemm:hotpath
func (r *Recorder) Event(k EventKind, p Phase, a, b int64) {
	if r == nil {
		return
	}
	r.EventSeq(0, k, p, a, b)
}

// EventSeq forwards a structured event under an explicit multiply
// sequence id. Nil-safe.
//
//spgemm:hotpath
func (r *Recorder) EventSeq(seq int64, k EventKind, p Phase, a, b int64) {
	if r == nil {
		return
	}
	if sp := r.sink.Load(); sp != nil {
		(*sp).Event(seq, k, p, a, b)
	}
}
