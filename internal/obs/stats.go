package obs

import (
	"fmt"
	"io"
	"time"
)

// StatsSchema identifies the JSON layout of a Stats document. Bump the
// version only on breaking changes; additive fields keep v1.
const StatsSchema = "maskedspgemm/stats/v1"

// PhaseStats is one pipeline phase's accumulated wall time.
type PhaseStats struct {
	// Phase is the stable phase identifier (e.g. "exec.kernel").
	Phase string `json:"phase"`
	// Millis is the total wall time spent in the phase.
	Millis float64 `json:"millis"`
	// Count is the number of spans folded into Millis.
	Count int64 `json:"count"`
}

// CounterSet is one set of kernel counters — either a single worker's
// or the totals across workers. Field meanings match WorkerCounters.
type CounterSet struct {
	Tiles       int64 `json:"tiles"`
	Rows        int64 `json:"rows"`
	Flops       int64 `json:"flops"`
	CoIterPicks int64 `json:"co_iter_picks"`
	LinearPicks int64 `json:"linear_picks"`
	Gathered    int64 `json:"gathered"`
}

func (c *CounterSet) add(o CounterSet) {
	c.Tiles += o.Tiles
	c.Rows += o.Rows
	c.Flops += o.Flops
	c.CoIterPicks += o.CoIterPicks
	c.LinearPicks += o.LinearPicks
	c.Gathered += o.Gathered
}

func (c *CounterSet) sub(o CounterSet) {
	c.Tiles -= o.Tiles
	c.Rows -= o.Rows
	c.Flops -= o.Flops
	c.CoIterPicks -= o.CoIterPicks
	c.LinearPicks -= o.LinearPicks
	c.Gathered -= o.Gathered
}

// WorkerStats is one worker's counters in a Stats snapshot.
type WorkerStats struct {
	Worker int `json:"worker"`
	CounterSet
}

// Dist summarizes a per-worker quantity: min/max/mean over workers and
// the imbalance ratio max/mean (1.0 = perfect balance — the same metric
// tiling.Imbalance reports for tiles).
type Dist struct {
	Min       int64   `json:"min"`
	Max       int64   `json:"max"`
	Mean      float64 `json:"mean"`
	Imbalance float64 `json:"imbalance"`
}

func distOf(values []int64) Dist {
	if len(values) == 0 {
		return Dist{Imbalance: 1}
	}
	d := Dist{Min: values[0], Max: values[0]}
	var total int64
	for _, v := range values {
		if v < d.Min {
			d.Min = v
		}
		if v > d.Max {
			d.Max = v
		}
		total += v
	}
	d.Mean = float64(total) / float64(len(values))
	if d.Mean > 0 {
		d.Imbalance = float64(d.Max) / d.Mean
	} else {
		d.Imbalance = 1
	}
	return d
}

// Stats is an immutable snapshot of a Recorder — the machine-readable
// observability report. Phases appear in pipeline order (only phases
// that recorded at least one span); workers appear in id order.
type Stats struct {
	// Schema is always StatsSchema.
	Schema string `json:"schema"`
	// Seq is the multiply sequence id for per-run snapshots (RunScope /
	// Recorder.LastRun); 0 for cumulative snapshots.
	Seq int64 `json:"seq,omitempty"`
	// Runs is the number of kernel runs folded into the snapshot.
	Runs int64 `json:"runs"`
	// Phases is the per-phase wall-time breakdown.
	Phases []PhaseStats `json:"phases"`
	// Workers is the per-worker counter breakdown.
	Workers []WorkerStats `json:"workers"`
	// Totals is the sum of Workers.
	Totals CounterSet `json:"totals"`
	// TileDist and FlopDist summarize per-worker load balance.
	TileDist Dist `json:"tile_dist"`
	FlopDist Dist `json:"flop_dist"`
	// Accum is the accumulator-side statistics.
	Accum AccumCounters `json:"accum"`
	// Pool is the execution-engine workspace-pool and plan-cache
	// statistics (zero when no engine is configured).
	Pool PoolCounters `json:"pool"`
	// Fused is the fused-pipeline statistics (zero when no fused
	// multiplies ran).
	Fused FusedCounters `json:"fused"`
	// Recal is the online cost-model recalibration statistics (zero
	// when adaptive tuning is off).
	Recal RecalCounters `json:"recal"`
	// Retry is the retry-ladder statistics of the facade's resilience
	// layer (zero when no retry policy is configured).
	Retry RetryCounters `json:"retry"`
	// Sched is the wave-executor statistics of level-scheduled runs
	// (zero when only flat single-wave kernels ran).
	Sched SchedCounters `json:"sched"`
}

// Stats snapshots the recorder. Nil recorders return a zero snapshot
// (Schema still set, everything else empty).
func (r *Recorder) Stats() Stats {
	if r == nil {
		s := Stats{Schema: StatsSchema}
		s.finalize()
		return s
	}
	s := Stats{Schema: StatsSchema}
	r.mu.Lock()
	defer r.mu.Unlock()
	s.Runs = r.runs
	for p := Phase(0); p < numPhases; p++ {
		if r.counts[p] == 0 {
			continue
		}
		s.Phases = append(s.Phases, PhaseStats{
			Phase:  p.String(),
			Millis: float64(r.spans[p]) / float64(time.Millisecond),
			Count:  r.counts[p],
		})
	}
	for w := range r.workers {
		c := &r.workers[w]
		s.Workers = append(s.Workers, WorkerStats{
			Worker: w,
			CounterSet: CounterSet{
				Tiles:       c.Tiles.Load(),
				Rows:        c.Rows.Load(),
				Flops:       c.Flops.Load(),
				CoIterPicks: c.CoIterPicks.Load(),
				LinearPicks: c.LinearPicks.Load(),
				Gathered:    c.Gathered.Load(),
			},
		})
	}
	s.Accum = r.accum
	s.Pool = r.pool
	s.Fused = r.fused
	s.Recal = r.recal
	s.Retry = r.retry
	s.Sched = r.sched
	s.finalize()
	return s
}

// finalize recomputes the derived fields (Totals and the distributions)
// from the Workers list.
func (s *Stats) finalize() {
	s.Totals = CounterSet{}
	tiles := make([]int64, 0, len(s.Workers))
	flops := make([]int64, 0, len(s.Workers))
	for _, w := range s.Workers {
		s.Totals.add(w.CounterSet)
		tiles = append(tiles, w.Tiles)
		flops = append(flops, w.Flops)
	}
	s.TileDist = distOf(tiles)
	s.FlopDist = distOf(flops)
}

// Sub returns the difference s − prev: the activity recorded between
// the two snapshots of the same recorder (e.g. one Multiply call).
// Phases are matched by name, workers by id; entries absent from prev
// carry over unchanged.
func (s Stats) Sub(prev Stats) Stats {
	out := Stats{Schema: s.Schema, Runs: s.Runs - prev.Runs}
	prevPhase := make(map[string]PhaseStats, len(prev.Phases))
	for _, p := range prev.Phases {
		prevPhase[p.Phase] = p
	}
	for _, p := range s.Phases {
		if q, ok := prevPhase[p.Phase]; ok {
			p.Millis -= q.Millis
			p.Count -= q.Count
		}
		if p.Count > 0 {
			out.Phases = append(out.Phases, p)
		}
	}
	prevWorker := make(map[int]CounterSet, len(prev.Workers))
	for _, w := range prev.Workers {
		prevWorker[w.Worker] = w.CounterSet
	}
	for _, w := range s.Workers {
		if q, ok := prevWorker[w.Worker]; ok {
			w.CounterSet.sub(q)
		}
		out.Workers = append(out.Workers, w)
	}
	out.Accum = AccumCounters{
		MarkerClears:   s.Accum.MarkerClears - prev.Accum.MarkerClears,
		TableGrows:     s.Accum.TableGrows - prev.Accum.TableGrows,
		HashProbes:     s.Accum.HashProbes - prev.Accum.HashProbes,
		HashCollisions: s.Accum.HashCollisions - prev.Accum.HashCollisions,
	}
	out.Pool = PoolCounters{
		Hits:        s.Pool.Hits - prev.Pool.Hits,
		Misses:      s.Pool.Misses - prev.Pool.Misses,
		Steals:      s.Pool.Steals - prev.Pool.Steals,
		Resizes:     s.Pool.Resizes - prev.Pool.Resizes,
		Evictions:   s.Pool.Evictions - prev.Pool.Evictions,
		Quarantined: s.Pool.Quarantined - prev.Pool.Quarantined,
		PlanHits:    s.Pool.PlanHits - prev.Pool.PlanHits,
		PlanMisses:  s.Pool.PlanMisses - prev.Pool.PlanMisses,
	}
	out.Fused = s.Fused
	out.Fused.sub(prev.Fused)
	// Recal counters subtract; KappaLast is a gauge and carries over.
	out.Recal = RecalCounters{
		Updates:      s.Recal.Updates - prev.Recal.Updates,
		Explorations: s.Recal.Explorations - prev.Recal.Explorations,
		Recenters:    s.Recal.Recenters - prev.Recal.Recenters,
		Snapbacks:    s.Recal.Snapbacks - prev.Recal.Snapbacks,
		KappaLast:    s.Recal.KappaLast,
	}
	out.Retry = RetryCounters{
		Attempts:     s.Retry.Attempts - prev.Retry.Attempts,
		Retries:      s.Retry.Retries - prev.Retry.Retries,
		Degradations: s.Retry.Degradations - prev.Retry.Degradations,
		Failures:     s.Retry.Failures - prev.Retry.Failures,
		Stalls:       s.Retry.Stalls - prev.Retry.Stalls,
	}
	out.Sched = s.Sched.sub(prev.Sched)
	out.finalize()
	return out
}

// WriteTable renders the snapshot as an indented human-readable block.
func (s Stats) WriteTable(w io.Writer) {
	fmt.Fprintf(w, "  runs: %d\n", s.Runs)
	if len(s.Phases) > 0 {
		fmt.Fprintf(w, "  %-18s %12s %8s\n", "phase", "millis", "spans")
		for _, p := range s.Phases {
			fmt.Fprintf(w, "  %-18s %12.3f %8d\n", p.Phase, p.Millis, p.Count)
		}
	}
	t := s.Totals
	fmt.Fprintf(w, "  totals: tiles=%d rows=%d flops=%d gathered=%d\n",
		t.Tiles, t.Rows, t.Flops, t.Gathered)
	if t.CoIterPicks+t.LinearPicks > 0 {
		fmt.Fprintf(w, "  hybrid picks: co-iterate=%d linear=%d (%.1f%% co-iterate)\n",
			t.CoIterPicks, t.LinearPicks,
			100*float64(t.CoIterPicks)/float64(t.CoIterPicks+t.LinearPicks))
	}
	if len(s.Workers) > 1 {
		fmt.Fprintf(w, "  workers: %d  tiles min/mean/max %d/%.1f/%d (imb %.2f)  flops min/mean/max %d/%.1f/%d (imb %.2f)\n",
			len(s.Workers),
			s.TileDist.Min, s.TileDist.Mean, s.TileDist.Max, s.TileDist.Imbalance,
			s.FlopDist.Min, s.FlopDist.Mean, s.FlopDist.Max, s.FlopDist.Imbalance)
	}
	a := s.Accum
	fmt.Fprintf(w, "  accum: marker-clears=%d table-grows=%d hash-probes=%d hash-collisions=%d\n",
		a.MarkerClears, a.TableGrows, a.HashProbes, a.HashCollisions)
	if f := s.Fused; f.ChainRuns+f.SelectRuns+f.StreamRuns > 0 {
		fmt.Fprintf(w, "  fused: chains=%d selects=%d streams=%d tiles staged/streamed=%d/%d mid entries=%d (%d bytes) select kept/dropped=%d/%d\n",
			f.ChainRuns, f.SelectRuns, f.StreamRuns,
			f.StagedTiles, f.StreamedTiles, f.MidEntries, f.MidBytes,
			f.SelectKept, f.SelectDropped)
	}
	if c := s.Recal; c.Updates > 0 {
		fmt.Fprintf(w, "  recal: updates=%d explorations=%d recenters=%d snapbacks=%d κ=%g\n",
			c.Updates, c.Explorations, c.Recenters, c.Snapbacks, c.KappaLast)
	}
	if p := s.Pool; p.Hits+p.Misses+p.Steals+p.Quarantined+p.PlanHits+p.PlanMisses > 0 {
		lookups := p.Hits + p.Steals + p.Misses
		fmt.Fprintf(w, "  pool: hits=%d misses=%d steals=%d (%.1f%% hit) resizes=%d evictions=%d quarantined=%d plan hits/misses=%d/%d\n",
			p.Hits, p.Misses, p.Steals,
			100*float64(p.Hits+p.Steals)/float64(max(lookups, 1)),
			p.Resizes, p.Evictions, p.Quarantined, p.PlanHits, p.PlanMisses)
	}
	if c := s.Retry; c.Attempts > 0 {
		fmt.Fprintf(w, "  retry: attempts=%d retries=%d degradations=%d failures=%d stalls=%d\n",
			c.Attempts, c.Retries, c.Degradations, c.Failures, c.Stalls)
	}
	if c := s.Sched; c.WaveRuns > 0 {
		fmt.Fprintf(w, "  sched: wave-runs=%d levels=%d waves=%d (serial=%d) barriers=%d barrier-wait=%.3fms\n",
			c.WaveRuns, c.Levels, c.Waves, c.SerialWaves, c.Barriers,
			float64(c.BarrierWaitNs)/1e6)
	}
}
