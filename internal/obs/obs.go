// Package obs is the kernel-wide observability subsystem: phase spans,
// per-worker counters and accumulator statistics collected during a
// masked-SpGEMM run, exposed as a machine-readable Stats snapshot.
//
// The paper's whole argument is about *where* masked-SpGEMM time goes —
// tiling balance (Eq. 2), iteration-space choice (Eq. 3), accumulator
// resets — so the kernel records exactly those quantities: wall time per
// plan/exec phase, tiles/rows/FLOPs per worker (load imbalance from the
// tiling policy becomes a min/max/mean over workers), co-iterate vs
// linear-scan picks from the Eq. 3 cost model, and marker overflows and
// hash probe traffic from the accumulators.
//
// A nil *Recorder is the disabled state: every method nil-checks and
// returns immediately, allocating nothing, so the kernel can thread a
// recorder unconditionally and pay (close to) nothing when observability
// is off. Counters are exact, not sampled — a counter-parity test in
// internal/core asserts they equal values computed independently from
// the inputs.
//
// A Recorder accumulates across runs until Reset; Stats snapshots can be
// subtracted (Stats.Sub) to isolate a single run.
package obs

import (
	"context"
	"math"
	"math/bits"
	"runtime/pprof"
	"runtime/trace"
	"sync"
	"sync/atomic"
	"time"
)

// Phase identifies one span of the kernel pipeline.
type Phase int

const (
	// PhasePlanRowWork is the Eq. 2 per-row work estimation.
	PhasePlanRowWork Phase = iota
	// PhasePlanPrefixSum is the prefix sum behind FLOP-balanced tiling.
	PhasePlanPrefixSum
	// PhasePlanTileBuild is the tile-boundary placement.
	PhasePlanTileBuild
	// PhasePlanRowCap is the accumulator row-capacity scan (max nnz of a
	// mask row; plus the flop bound under vanilla iteration).
	PhasePlanRowCap
	// PhaseExecKernel is the numeric kernel: the tile loop itself.
	PhaseExecKernel
	// PhaseExecAssemble is the CSR stitching of per-tile outputs.
	PhaseExecAssemble
	// PhasePlanLevels is the triangular-solve level-set discovery and
	// wave coarsening: dependency depths, substitution order, and the
	// merge/split of levels into FLOP-balanced waves.
	PhasePlanLevels
	// PhaseExecSolve is the wave-scheduled substitution kernel of the
	// masked triangular solve.
	PhaseExecSolve
	numPhases
)

// phaseNames are the stable identifiers used in the JSON schema and in
// pprof labels; changing one is a schema break (appending is additive
// and keeps stats/v1).
var phaseNames = [numPhases]string{
	"plan.row_work",
	"plan.prefix_sum",
	"plan.tile_build",
	"plan.row_cap",
	"exec.kernel",
	"exec.assemble",
	"plan.levels",
	"exec.solve",
}

func (p Phase) String() string {
	if p < 0 || p >= numPhases {
		return "unknown"
	}
	return phaseNames[p]
}

// WorkerCounters is one worker's counter block. Each worker owns one
// block for the duration of a run; blocks are padded to two cache lines
// so neighboring workers never false-share (the adjacent-line
// prefetcher pulls pairs). The fields are atomic so that a slot can be
// read (by Stats) while a run is still incrementing it, and so the
// atomicpad analyzer can mechanically reject any plain load or store
// that would reintroduce a data race.
//
//spgemm:padded
type WorkerCounters struct {
	// Tiles is the number of tiles this worker claimed and executed.
	Tiles atomic.Int64
	// Rows is the number of output rows this worker iterated.
	Rows atomic.Int64
	// Flops is the Eq. 2 flop volume Σ nnz(B[k,:]) over the A entries of
	// the rows this worker processed — the same estimate the FLOP-balanced
	// tiler splits on, so per-worker Flops measures how well the tiling
	// policy actually balanced the work.
	Flops atomic.Int64
	// CoIterPicks and LinearPicks count the hybrid iteration space's
	// per-(i,k) Eq. 3 decisions: co-iterate (binary search) vs linear scan.
	CoIterPicks atomic.Int64
	// LinearPicks counts the linear-scan side of the hybrid decision.
	LinearPicks atomic.Int64
	// Gathered is the number of output entries this worker emitted.
	Gathered atomic.Int64
	_        [128 - 6*8]byte // pad to 2 cache lines
}

// reset zeroes the block field by field; the atomic fields carry a
// noCopy sentinel, so `*c = WorkerCounters{}` is not an option.
func (c *WorkerCounters) reset() {
	c.Tiles.Store(0)
	c.Rows.Store(0)
	c.Flops.Store(0)
	c.CoIterPicks.Store(0)
	c.LinearPicks.Store(0)
	c.Gathered.Store(0)
}

// copyFrom transfers o's values into c, again without copying the
// noCopy-guarded struct wholesale.
func (c *WorkerCounters) copyFrom(o *WorkerCounters) {
	c.Tiles.Store(o.Tiles.Load())
	c.Rows.Store(o.Rows.Load())
	c.Flops.Store(o.Flops.Load())
	c.CoIterPicks.Store(o.CoIterPicks.Load())
	c.LinearPicks.Store(o.LinearPicks.Load())
	c.Gathered.Store(o.Gathered.Load())
}

// addFrom accumulates o's values into c (used when a run scope folds
// its per-run worker blocks into the cumulative totals).
func (c *WorkerCounters) addFrom(o *WorkerCounters) {
	c.Tiles.Add(o.Tiles.Load())
	c.Rows.Add(o.Rows.Load())
	c.Flops.Add(o.Flops.Load())
	c.CoIterPicks.Add(o.CoIterPicks.Load())
	c.LinearPicks.Add(o.LinearPicks.Load())
	c.Gathered.Add(o.Gathered.Load())
}

// AccumCounters are the accumulator-side statistics, aggregated over
// all worker accumulators (see internal/accum.Stats).
type AccumCounters struct {
	// MarkerClears counts full state resets forced by marker overflow —
	// the Fig. 13 bit-width trade-off made visible.
	MarkerClears int64 `json:"marker_clears"`
	// TableGrows counts hash-table doublings (a row exceeded the mask
	// bound the table was sized by).
	TableGrows int64 `json:"table_grows"`
	// HashProbes counts hash-table probe sequences (one per lookup).
	HashProbes int64 `json:"hash_probes"`
	// HashCollisions counts extra probe steps past the home slot.
	HashCollisions int64 `json:"hash_collisions"`
}

// PoolCounters are the execution-engine pool statistics: workspace
// checkout outcomes and plan-cache outcomes (see internal/exec). The
// kernel folds per-run deltas of the engine's monotonic counters into
// the recorder, so a snapshot attributes pool traffic to the runs it
// covers. Note the attribution is per engine, not per run: when several
// concurrent runs share one engine, each run's delta includes the
// others' overlapping traffic.
type PoolCounters struct {
	// Hits counts workspace checkouts served from the pool; Misses
	// counts checkouts that constructed fresh state.
	Hits   int64 `json:"hits"`
	Misses int64 `json:"misses"`
	// Steals counts checkouts served by a larger size-class bucket.
	Steals int64 `json:"steals"`
	// Resizes counts in-place growths of a pooled workspace.
	Resizes int64 `json:"resizes"`
	// Evictions counts demotions from the bounded hot tier to the
	// GC-managed overflow tier.
	Evictions int64 `json:"evictions"`
	// Quarantined counts workspaces dropped at release because their run
	// poisoned them (panic, cancellation or injected fault mid-run); a
	// quarantined workspace is never pooled again.
	Quarantined int64 `json:"quarantined"`
	// PlanHits and PlanMisses count plan-cache outcomes.
	PlanHits   int64 `json:"plan_hits"`
	PlanMisses int64 `json:"plan_misses"`
}

// FusedCounters are the fused-pipeline statistics: how chained
// multiplies were executed and how much intermediate data stayed in
// tile staging buffers instead of a fully assembled CSR (see
// internal/core's fused pipeline).
type FusedCounters struct {
	// ChainRuns counts fused two-multiply chains; SelectRuns counts
	// multiply+select fusions (k-truss prune); StreamRuns counts
	// multiply+consume fusions that skipped assembly entirely.
	ChainRuns  int64 `json:"chain_runs"`
	SelectRuns int64 `json:"select_runs"`
	StreamRuns int64 `json:"stream_runs"`
	// StagedTiles counts intermediate tiles staged whole (the Eq. 2
	// fusion model predicted the tile fits the cache budget);
	// StreamedTiles counts tiles processed row-at-a-time because their
	// estimated intermediate footprint exceeded it.
	StagedTiles   int64 `json:"staged_tiles"`
	StreamedTiles int64 `json:"streamed_tiles"`
	// MidEntries is the number of intermediate entries that lived only
	// in tile staging buffers; MidBytes is their payload volume — the
	// DRAM traffic a materialized intermediate CSR would have cost.
	MidEntries int64 `json:"mid_entries"`
	MidBytes   int64 `json:"mid_bytes"`
	// SelectKept and SelectDropped count the per-entry outcomes of
	// fused selects.
	SelectKept    int64 `json:"select_kept"`
	SelectDropped int64 `json:"select_dropped"`
}

func (f *FusedCounters) Add(o FusedCounters) {
	f.ChainRuns += o.ChainRuns
	f.SelectRuns += o.SelectRuns
	f.StreamRuns += o.StreamRuns
	f.StagedTiles += o.StagedTiles
	f.StreamedTiles += o.StreamedTiles
	f.MidEntries += o.MidEntries
	f.MidBytes += o.MidBytes
	f.SelectKept += o.SelectKept
	f.SelectDropped += o.SelectDropped
}

func (f *FusedCounters) sub(o FusedCounters) {
	f.ChainRuns -= o.ChainRuns
	f.SelectRuns -= o.SelectRuns
	f.StreamRuns -= o.StreamRuns
	f.StagedTiles -= o.StagedTiles
	f.StreamedTiles -= o.StreamedTiles
	f.MidEntries -= o.MidEntries
	f.MidBytes -= o.MidBytes
	f.SelectKept -= o.SelectKept
	f.SelectDropped -= o.SelectDropped
}

// RecalCounters are the online cost-model recalibration statistics (see
// internal/model's recalibrator): how often the κ estimator observed a
// run, explored a neighboring κ, recentered on a better one, or snapped
// back to the static default. KappaLast is a gauge — the most recently
// applied κ — not a counter.
type RecalCounters struct {
	Updates      int64   `json:"updates"`
	Explorations int64   `json:"explorations"`
	Recenters    int64   `json:"recenters"`
	Snapbacks    int64   `json:"snapbacks"`
	KappaLast    float64 `json:"kappa_last"`
}

// Recorder collects phase spans, per-worker counters and accumulator
// statistics for one kernel (or a sequence of runs of the same kernel).
// A nil *Recorder disables all collection: every method is nil-safe and
// the nil paths allocate nothing.
//
// The cumulative totals aggregate across runs; per-run attribution goes
// through StartRun/RunScope, which scopes spans and counters by a
// multiply sequence id so overlapping runs (fused chains, concurrent
// Multiply calls sharing a recorder) never bleed into each other's
// per-run snapshots.
type Recorder struct {
	mu      sync.Mutex
	seq     int64
	spans   [numPhases]time.Duration
	counts  [numPhases]int64
	workers []WorkerCounters
	accum   AccumCounters
	pool    PoolCounters
	fused   FusedCounters
	recal   RecalCounters
	retry   RetryCounters
	sched   SchedCounters
	runs    int64
	// sink is the optional live-telemetry tap (see Sink); stored behind
	// an atomic pointer so recording paths read it without the mutex.
	sink atomic.Pointer[Sink]
	// lastRun is the snapshot of the most recently ended run scope.
	lastRun Stats
	hasLast bool
	// scopePool recycles per-run worker counter blocks across scopes.
	scopePool [][]WorkerCounters
}

// NewRecorder returns an empty enabled recorder.
func NewRecorder() *Recorder { return &Recorder{} }

// Enabled reports whether the recorder collects anything (false for nil).
func (r *Recorder) Enabled() bool { return r != nil }

// Reset discards everything recorded so far.
func (r *Recorder) Reset() {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.spans = [numPhases]time.Duration{}
	r.counts = [numPhases]int64{}
	for i := range r.workers {
		r.workers[i].reset()
	}
	r.accum = AccumCounters{}
	r.pool = PoolCounters{}
	r.fused = FusedCounters{}
	r.recal = RecalCounters{}
	r.retry = RetryCounters{}
	r.sched = SchedCounters{}
	r.runs = 0
	r.lastRun = Stats{}
	r.hasLast = false
}

// nop is the shared no-op span closer: the nil fast path returns it
// instead of allocating a closure.
var nop = func() {}

// Span starts a phase span and returns its closer. The closer adds the
// elapsed wall time to the phase's total. Nil recorders return a shared
// no-op without allocating; spans are per run, not per tile, so the
// enabled path's closure allocation is negligible.
func (r *Recorder) Span(p Phase) func() {
	if r == nil {
		return nop
	}
	start := time.Now()
	return func() {
		d := time.Since(start)
		r.mu.Lock()
		r.spans[p] += d
		r.counts[p]++
		r.mu.Unlock()
		r.emitPhase(0, p, d)
	}
}

// Do runs f under a pprof label marking the phase, so CPU samples taken
// during f — including on goroutines f spawns, which inherit labels —
// are attributed to the phase in pprof output. Nil recorders call f
// directly.
func (r *Recorder) Do(ctx context.Context, p Phase, f func()) {
	if r == nil {
		f()
		return
	}
	if ctx == nil {
		ctx = context.Background()
	}
	pprof.Do(ctx, pprof.Labels("spgemm_phase", p.String()), func(context.Context) { f() })
}

// TileRegion opens a runtime/trace region covering one tile batch and
// returns its closer. Regions appear in `go tool trace` under the task
// timeline, attributing execution-trace slices to individual batches.
// The region is only created while tracing is active; otherwise (and on
// nil recorders) the shared no-op is returned.
func (r *Recorder) TileRegion(ctx context.Context) func() {
	if r == nil || !trace.IsEnabled() {
		return nop
	}
	if ctx == nil {
		ctx = context.Background()
	}
	return trace.StartRegion(ctx, "spgemm.tile_batch").End
}

// WorkerSlots returns n per-worker counter blocks, growing the backing
// array if needed. Worker w increments slot[w] freely during the run;
// the scheduler's completion barrier publishes the writes before Stats
// reads them. Returns nil on a nil recorder.
func (r *Recorder) WorkerSlots(n int) []WorkerCounters {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.workers) < n {
		grown := make([]WorkerCounters, n)
		for i := range r.workers {
			grown[i].copyFrom(&r.workers[i])
		}
		r.workers = grown
	}
	return r.workers[:n]
}

// AddAccum folds accumulator statistics (typically a per-run delta)
// into the totals.
func (r *Recorder) AddAccum(a AccumCounters) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.accum.MarkerClears += a.MarkerClears
	r.accum.TableGrows += a.TableGrows
	r.accum.HashProbes += a.HashProbes
	r.accum.HashCollisions += a.HashCollisions
	r.mu.Unlock()
}

// AddPool folds execution-engine pool statistics (typically a per-run
// delta of the engine's monotonic counters) into the totals.
func (r *Recorder) AddPool(p PoolCounters) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.pool.Hits += p.Hits
	r.pool.Misses += p.Misses
	r.pool.Steals += p.Steals
	r.pool.Resizes += p.Resizes
	r.pool.Evictions += p.Evictions
	r.pool.Quarantined += p.Quarantined
	r.pool.PlanHits += p.PlanHits
	r.pool.PlanMisses += p.PlanMisses
	r.mu.Unlock()
}

// RetryCounters are the retry-and-degradation statistics of the facade's
// resilience layer: per-attempt and per-outcome counts of the retry
// ladder around Multiply/MxM (see spgemm.Options.Retry).
type RetryCounters struct {
	// Attempts counts every execution attempt, including first tries.
	Attempts int64 `json:"attempts"`
	// Retries counts attempts after the first (Attempts - calls that
	// needed no retry is not derivable from this pair alone, so both are
	// kept).
	Retries int64 `json:"retries"`
	// Degradations counts attempts that ran on a narrowed execution path
	// (serial, unpooled) rather than the configured one.
	Degradations int64 `json:"degradations"`
	// Failures counts operations whose final attempt still failed.
	Failures int64 `json:"failures"`
	// Stalls counts attempts that failed with ErrStalled specifically.
	Stalls int64 `json:"stalls"`
}

// AddRetry folds retry-ladder statistics into the totals.
func (r *Recorder) AddRetry(c RetryCounters) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.retry.Attempts += c.Attempts
	r.retry.Retries += c.Retries
	r.retry.Degradations += c.Degradations
	r.retry.Failures += c.Failures
	r.retry.Stalls += c.Stalls
	r.mu.Unlock()
	if c.Attempts > 0 {
		r.Event(EventRetry, PhaseNone, c.Retries, c.Degradations)
	}
	if c.Stalls > 0 {
		r.Event(EventStall, PhaseNone, c.Stalls, 0)
	}
	if c.Failures > 0 {
		r.Event(EventFailure, PhaseNone, c.Failures, 0)
	}
}

// WaveHistBuckets is the bucket count of the wave-shape histograms:
// log2 buckets, so bucket b (b > 0) covers values in [2^(b-1), 2^b) and
// the last bucket absorbs everything wider.
const WaveHistBuckets = 16

// WaveBucket returns the log2 histogram bucket of v: bits.Len64,
// clamped to the last bucket. Zero and negative values land in bucket 0.
func WaveBucket(v int64) int {
	if v <= 0 {
		return 0
	}
	b := bits.Len64(uint64(v))
	if b >= WaveHistBuckets {
		return WaveHistBuckets - 1
	}
	return b
}

// SchedCounters are the wave-executor statistics of level-scheduled
// runs (masked triangular solve): how many dependency-carrying runs
// happened, how their level sets coarsened into waves, and what the
// wave barriers cost. Flat single-wave SpGEMM runs record nothing here,
// so the block stays zero — and is omitted from tables — on pure
// multiply workloads.
type SchedCounters struct {
	// WaveRuns counts wave-scheduled runs.
	WaveRuns int64 `json:"wave_runs"`
	// Levels counts raw dependency levels before coarsening, summed
	// across runs.
	Levels int64 `json:"levels"`
	// Waves counts executed waves after coarsening, summed across runs.
	Waves int64 `json:"waves"`
	// SerialWaves counts waves the coarsener collapsed to a single tile
	// (narrow level runs executed serially between barriers).
	SerialWaves int64 `json:"serial_waves"`
	// Barriers counts barrier arrivals: one per worker per crossed wave
	// boundary.
	Barriers int64 `json:"barriers"`
	// BarrierWaitNs is the cumulative time workers spent parked at wave
	// barriers waiting for stragglers.
	BarrierWaitNs int64 `json:"barrier_wait_ns"`
	// WaveTiles and WaveFlops are log2-bucket histograms (see WaveBucket)
	// of per-wave tile counts and Eq. 2 flop volumes.
	WaveTiles [WaveHistBuckets]int64 `json:"wave_tiles"`
	WaveFlops [WaveHistBuckets]int64 `json:"wave_flops"`
}

// add folds d into c, elementwise on the histograms.
func (c *SchedCounters) add(d SchedCounters) {
	c.WaveRuns += d.WaveRuns
	c.Levels += d.Levels
	c.Waves += d.Waves
	c.SerialWaves += d.SerialWaves
	c.Barriers += d.Barriers
	c.BarrierWaitNs += d.BarrierWaitNs
	for i := range c.WaveTiles {
		c.WaveTiles[i] += d.WaveTiles[i]
	}
	for i := range c.WaveFlops {
		c.WaveFlops[i] += d.WaveFlops[i]
	}
}

// sub returns c - d, elementwise on the histograms.
func (c SchedCounters) sub(d SchedCounters) SchedCounters {
	out := SchedCounters{
		WaveRuns:      c.WaveRuns - d.WaveRuns,
		Levels:        c.Levels - d.Levels,
		Waves:         c.Waves - d.Waves,
		SerialWaves:   c.SerialWaves - d.SerialWaves,
		Barriers:      c.Barriers - d.Barriers,
		BarrierWaitNs: c.BarrierWaitNs - d.BarrierWaitNs,
	}
	for i := range out.WaveTiles {
		out.WaveTiles[i] = c.WaveTiles[i] - d.WaveTiles[i]
	}
	for i := range out.WaveFlops {
		out.WaveFlops[i] = c.WaveFlops[i] - d.WaveFlops[i]
	}
	return out
}

// AddSched folds wave-executor statistics into the totals.
func (r *Recorder) AddSched(c SchedCounters) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.sched.add(c)
	r.mu.Unlock()
}

// AddFused folds fused-pipeline statistics into the totals.
func (r *Recorder) AddFused(f FusedCounters) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.fused.Add(f)
	r.mu.Unlock()
}

// AddRecal folds recalibration statistics into the totals. KappaLast,
// being a gauge, replaces the stored value when nonzero.
func (r *Recorder) AddRecal(c RecalCounters) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.recal.Updates += c.Updates
	r.recal.Explorations += c.Explorations
	r.recal.Recenters += c.Recenters
	r.recal.Snapbacks += c.Snapbacks
	if c.KappaLast != 0 {
		r.recal.KappaLast = c.KappaLast
	}
	r.mu.Unlock()
	if c.Snapbacks > 0 {
		r.Event(EventSnapback, PhaseNone, c.Snapbacks, int64(math.Float64bits(c.KappaLast)))
	}
}

// AddRun marks the completion of one kernel run.
func (r *Recorder) AddRun() {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.runs++
	r.mu.Unlock()
}
