package obs

import (
	"strings"
	"testing"
)

// These regression tests pin the resilience blocks of the human table
// and of snapshot subtraction: retry-ladder counters, workspace
// quarantines and online-κ recalibration must render when present, stay
// silent when absent, and subtract per-block under Stats.Sub (with the
// κ gauge carrying over rather than subtracting).

func renderedTable(s Stats) string {
	var sb strings.Builder
	s.WriteTable(&sb)
	return sb.String()
}

func TestWriteTableRendersResilienceBlocks(t *testing.T) {
	r := NewRecorder()
	r.AddRetry(RetryCounters{Attempts: 3, Retries: 2, Degradations: 1, Failures: 1, Stalls: 1})
	r.AddRecal(RecalCounters{Updates: 4, Explorations: 2, Recenters: 1, Snapbacks: 1, KappaLast: 2.25})
	r.AddPool(PoolCounters{Hits: 5, Misses: 1, Quarantined: 2, PlanHits: 3, PlanMisses: 1})
	table := renderedTable(r.Stats())

	for _, want := range []string{
		"retry: attempts=3 retries=2 degradations=1 failures=1 stalls=1",
		"recal: updates=4 explorations=2 recenters=1 snapbacks=1 κ=2.25",
		"quarantined=2",
		"plan hits/misses=3/1",
	} {
		if !strings.Contains(table, want) {
			t.Errorf("table missing %q:\n%s", want, table)
		}
	}
}

func TestWriteTableOmitsQuietBlocks(t *testing.T) {
	r := NewRecorder()
	r.AddRun()
	table := renderedTable(r.Stats())
	for _, absent := range []string{"retry:", "recal:", "pool:"} {
		if strings.Contains(table, absent) {
			t.Errorf("quiet recorder renders %q:\n%s", absent, table)
		}
	}
}

// TestWriteTableQuarantineOnlyPool pins the pool-line gate: a pool whose
// only activity is quarantines (a poisoned run on an otherwise idle
// engine) must still render.
func TestWriteTableQuarantineOnlyPool(t *testing.T) {
	r := NewRecorder()
	r.AddPool(PoolCounters{Quarantined: 1})
	if table := renderedTable(r.Stats()); !strings.Contains(table, "quarantined=1") {
		t.Fatalf("quarantine-only pool not rendered:\n%s", table)
	}
}

func TestStatsSubResilienceBlocks(t *testing.T) {
	r := NewRecorder()
	r.AddRetry(RetryCounters{Attempts: 2, Retries: 1, Stalls: 1})
	r.AddRecal(RecalCounters{Updates: 3, KappaLast: 1.5})
	r.AddPool(PoolCounters{Hits: 4, Quarantined: 1})
	before := r.Stats()

	r.AddRetry(RetryCounters{Attempts: 3, Degradations: 2, Failures: 1})
	r.AddRecal(RecalCounters{Updates: 2, Snapbacks: 1, KappaLast: 2.5})
	r.AddPool(PoolCounters{Hits: 6, Quarantined: 2})

	delta := r.Stats().Sub(before)
	if delta.Retry != (RetryCounters{Attempts: 3, Degradations: 2, Failures: 1}) {
		t.Fatalf("retry delta = %+v", delta.Retry)
	}
	if delta.Recal.Updates != 2 || delta.Recal.Snapbacks != 1 {
		t.Fatalf("recal delta = %+v", delta.Recal)
	}
	// KappaLast is a gauge: the current value carries over, it does not
	// subtract to a meaningless difference.
	if delta.Recal.KappaLast != 2.5 {
		t.Fatalf("kappa gauge in delta = %v, want 2.5 (carry-over)", delta.Recal.KappaLast)
	}
	if delta.Pool.Hits != 6 || delta.Pool.Quarantined != 2 {
		t.Fatalf("pool delta = %+v", delta.Pool)
	}
	// A delta renders like any snapshot.
	table := renderedTable(delta)
	if !strings.Contains(table, "retry: attempts=3") || !strings.Contains(table, "κ=2.5") {
		t.Fatalf("delta table:\n%s", table)
	}
}
