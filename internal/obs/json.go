package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
)

// WriteJSON is the shared encoder for every observability document the
// repo emits (Stats snapshots, bench stats reports, results twins): two-
// space indentation, trailing newline, no HTML escaping. One encoder
// means one formatting convention, so generated files diff cleanly.
func WriteJSON(w io.Writer, v any) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.SetEscapeHTML(false)
	return enc.Encode(v)
}

// MarshalJSONBytes renders v with the WriteJSON convention.
func MarshalJSONBytes(v any) ([]byte, error) {
	var buf bytes.Buffer
	if err := WriteJSON(&buf, v); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// RoundTrip verifies that data strictly decodes into out (a pointer to
// the document's Go type, rejecting unknown fields) and that re-encoding
// the decoded value reproduces data byte for byte — the schema check
// behind `make bench-smoke`. A mismatch means the producer and the
// declared schema have drifted apart.
func RoundTrip(data []byte, out any) error {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(out); err != nil {
		return fmt.Errorf("obs: strict decode failed: %w", err)
	}
	// A second document in the stream means trailing garbage.
	if dec.More() {
		return fmt.Errorf("obs: trailing data after JSON document")
	}
	re, err := MarshalJSONBytes(out)
	if err != nil {
		return fmt.Errorf("obs: re-encode failed: %w", err)
	}
	if !bytes.Equal(bytes.TrimSpace(re), bytes.TrimSpace(data)) {
		return fmt.Errorf("obs: document does not round-trip through the schema (field order or formatting drift)")
	}
	return nil
}

// ValidateStatsJSON checks that data is a schema-conforming Stats
// document: it round-trips strictly and carries the expected schema tag.
func ValidateStatsJSON(data []byte) error {
	var s Stats
	if err := RoundTrip(data, &s); err != nil {
		return err
	}
	if s.Schema != StatsSchema {
		return fmt.Errorf("obs: schema %q, want %q", s.Schema, StatsSchema)
	}
	return nil
}
