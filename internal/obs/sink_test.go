package obs

import (
	"sync"
	"testing"
	"time"
)

// captureSink is a test Sink that records everything pushed to it.
type captureSink struct {
	mu     sync.Mutex
	phases map[Phase]int
	runs   []time.Duration
	events []capturedEvent
}

type capturedEvent struct {
	runSeq int64
	kind   EventKind
	phase  Phase
	a, b   int64
}

func newCaptureSink() *captureSink {
	return &captureSink{phases: make(map[Phase]int)}
}

func (c *captureSink) RecordPhase(p Phase, d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.phases[p]++
}

func (c *captureSink) RecordRun(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.runs = append(c.runs, d)
}

func (c *captureSink) Event(runSeq int64, k EventKind, p Phase, a, b int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.events = append(c.events, capturedEvent{runSeq, k, p, a, b})
}

func (c *captureSink) kinds() map[EventKind]int {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[EventKind]int)
	for _, e := range c.events {
		out[e.kind]++
	}
	return out
}

// TestSinkReceivesSpansAndRuns pins the push path: an attached sink sees
// every recorder-level and scope-level span close, and completed runs.
func TestSinkReceivesSpansAndRuns(t *testing.T) {
	r := NewRecorder()
	sink := newCaptureSink()
	r.SetSink(sink)

	r.Span(PhasePlanRowWork)()

	scope := r.StartRun()
	scope.Span(PhaseExecKernel)()
	scope.Event(EventTileBatch, PhaseExecKernel, 1, 32)
	scope.MarkComplete()
	scope.End()

	if sink.phases[PhasePlanRowWork] != 1 || sink.phases[PhaseExecKernel] != 1 {
		t.Fatalf("sink phases = %v, want one span each for row_work and kernel", sink.phases)
	}
	if len(sink.runs) != 1 {
		t.Fatalf("sink saw %d run latencies, want 1", len(sink.runs))
	}
	kinds := sink.kinds()
	for _, want := range []EventKind{EventRunStart, EventPhase, EventTileBatch, EventRunEnd} {
		if kinds[want] == 0 {
			t.Fatalf("sink missing %s event (have %v)", want, kinds)
		}
	}
	// Scoped events carry the run's multiply sequence id.
	for _, e := range sink.events {
		if e.kind == EventTileBatch && e.runSeq != scope.Seq() {
			t.Fatalf("tile batch carries runSeq %d, want %d", e.runSeq, scope.Seq())
		}
	}
}

// TestSinkIncompleteRunEmitsNoLatency pins that an abandoned scope (no
// MarkComplete — the error path) emits no run latency to the sink.
func TestSinkIncompleteRunEmitsNoLatency(t *testing.T) {
	r := NewRecorder()
	sink := newCaptureSink()
	r.SetSink(sink)
	scope := r.StartRun()
	scope.End()
	if len(sink.runs) != 0 {
		t.Fatalf("abandoned run pushed %d latencies to the sink", len(sink.runs))
	}
}

// TestSinkCounterFoldEvents pins the event emissions from AddRetry and
// AddRecal: retries, stalls, failures and snapbacks become live events.
func TestSinkCounterFoldEvents(t *testing.T) {
	r := NewRecorder()
	sink := newCaptureSink()
	r.SetSink(sink)
	r.AddRetry(RetryCounters{Attempts: 2, Retries: 1, Stalls: 1})
	r.AddRetry(RetryCounters{Failures: 1})
	r.AddRecal(RecalCounters{Snapbacks: 1, KappaLast: 3})
	r.AddRecal(RecalCounters{Updates: 1}) // no snapback: no event
	kinds := sink.kinds()
	if kinds[EventRetry] != 1 || kinds[EventStall] != 1 || kinds[EventFailure] != 1 || kinds[EventSnapback] != 1 {
		t.Fatalf("counter-fold events = %v, want one each of retry/stall/failure/snapback", kinds)
	}
}

// TestSinkDetach pins SetSink(nil): a detached sink stops receiving, and
// the recorder keeps working.
func TestSinkDetach(t *testing.T) {
	r := NewRecorder()
	sink := newCaptureSink()
	r.SetSink(sink)
	r.Span(PhaseExecKernel)()
	r.SetSink(nil)
	r.Span(PhaseExecKernel)()
	if sink.phases[PhaseExecKernel] != 1 {
		t.Fatalf("sink saw %d spans, want 1 (one before detach)", sink.phases[PhaseExecKernel])
	}
	if got := r.Stats().Phases[0].Count; got != 2 {
		t.Fatalf("recorder counted %d spans, want 2 regardless of sink", got)
	}
	if r.Sink() != nil {
		t.Fatal("Sink() should be nil after detach")
	}
}

// TestNilRecorderSinkSafe pins the nil conventions on every sink-path
// entry point.
func TestNilRecorderSinkSafe(t *testing.T) {
	var r *Recorder
	r.SetSink(newCaptureSink())
	if r.Sink() != nil {
		t.Fatal("nil recorder Sink() should be nil")
	}
	r.Event(EventPhase, PhaseExecKernel, 0, 0)
	r.EventSeq(1, EventPhase, PhaseExecKernel, 0, 0)
	var s *RunScope
	s.Event(EventPhase, PhaseExecKernel, 0, 0)
}

// TestEventKindNames pins the stable identifiers: every kind has a
// distinct non-numeric name and round-trips through EventKindByName —
// the flight-dump schema depends on these strings.
func TestEventKindNames(t *testing.T) {
	seen := make(map[string]bool)
	for k := EventNone; k < NumEventKinds; k++ {
		name := k.String()
		if name == "" || seen[name] {
			t.Fatalf("kind %d has empty or duplicate name %q", k, name)
		}
		seen[name] = true
		got, ok := EventKindByName(name)
		if !ok || got != k {
			t.Fatalf("EventKindByName(%q) = %v/%v, want %v", name, got, ok, k)
		}
	}
	if _, ok := EventKindByName("definitely-not-a-kind"); ok {
		t.Fatal("unknown name resolved to a kind")
	}
}
