package obs

import (
	"bytes"
	"context"
	"strings"
	"testing"
	"time"
)

// TestNilRecorderNoAllocs is the disabled-path guard: every method on a
// nil Recorder must complete without allocating, so threading a recorder
// through the kernel costs nothing when observability is off.
func TestNilRecorderNoAllocs(t *testing.T) {
	var r *Recorder
	ctx := context.Background()
	allocs := testing.AllocsPerRun(100, func() {
		if r.Enabled() {
			t.Fatal("nil recorder reports enabled")
		}
		end := r.Span(PhaseExecKernel)
		end()
		r.Do(ctx, PhaseExecKernel, func() {})
		r.TileRegion(ctx)()
		_ = r.WorkerSlots(8)
		r.AddAccum(AccumCounters{MarkerClears: 1})
		r.AddRun()
		r.Reset()
	})
	if allocs != 0 {
		t.Fatalf("nil recorder allocated %.1f times per call set, want 0", allocs)
	}
}

func TestNilRecorderStats(t *testing.T) {
	var r *Recorder
	s := r.Stats()
	if s.Schema != StatsSchema {
		t.Fatalf("schema = %q, want %q", s.Schema, StatsSchema)
	}
	if s.Runs != 0 || len(s.Phases) != 0 || len(s.Workers) != 0 {
		t.Fatalf("nil recorder stats not empty: %+v", s)
	}
	if s.TileDist.Imbalance != 1 || s.FlopDist.Imbalance != 1 {
		t.Fatalf("empty dist imbalance should be 1, got %+v", s)
	}
}

func TestSpanAccounting(t *testing.T) {
	r := NewRecorder()
	end := r.Span(PhaseExecKernel)
	time.Sleep(2 * time.Millisecond)
	end()
	end = r.Span(PhaseExecKernel)
	end()
	r.Span(PhasePlanRowWork)()
	s := r.Stats()
	if len(s.Phases) != 2 {
		t.Fatalf("phases = %+v, want 2 entries", s.Phases)
	}
	// Pipeline order: plan before exec.
	if s.Phases[0].Phase != "plan.row_work" || s.Phases[1].Phase != "exec.kernel" {
		t.Fatalf("phase order = %+v", s.Phases)
	}
	if s.Phases[1].Count != 2 {
		t.Fatalf("exec.kernel count = %d, want 2", s.Phases[1].Count)
	}
	if s.Phases[1].Millis < 1 {
		t.Fatalf("exec.kernel millis = %v, want >= 1", s.Phases[1].Millis)
	}
}

func TestWorkerSlotsAndDists(t *testing.T) {
	r := NewRecorder()
	slots := r.WorkerSlots(3)
	slots[0].Tiles.Store(4)
	slots[0].Flops.Store(400)
	slots[1].Tiles.Store(2)
	slots[1].Flops.Store(100)
	slots[2].Tiles.Store(2)
	slots[2].Flops.Store(100)
	// Growing keeps earlier counts.
	slots = r.WorkerSlots(4)
	slots[3].Tiles.Store(0)
	slots[3].Flops.Store(0)
	s := r.Stats()
	if s.Totals.Tiles != 8 || s.Totals.Flops != 600 {
		t.Fatalf("totals = %+v", s.Totals)
	}
	if s.TileDist.Min != 0 || s.TileDist.Max != 4 || s.TileDist.Mean != 2 {
		t.Fatalf("tile dist = %+v", s.TileDist)
	}
	if s.TileDist.Imbalance != 2 {
		t.Fatalf("tile imbalance = %v, want 2", s.TileDist.Imbalance)
	}
	if s.FlopDist.Max != 400 || s.FlopDist.Mean != 150 {
		t.Fatalf("flop dist = %+v", s.FlopDist)
	}
}

func TestStatsSub(t *testing.T) {
	r := NewRecorder()
	slots := r.WorkerSlots(2)
	slots[0].Rows.Store(10)
	slots[1].Rows.Store(20)
	r.Span(PhaseExecKernel)()
	r.AddAccum(AccumCounters{HashProbes: 100})
	r.AddRun()
	before := r.Stats()

	slots[0].Rows.Add(5)
	slots[1].Rows.Add(7)
	r.Span(PhaseExecKernel)()
	r.AddAccum(AccumCounters{HashProbes: 50, MarkerClears: 1})
	r.AddRun()

	delta := r.Stats().Sub(before)
	if delta.Runs != 1 {
		t.Fatalf("delta runs = %d", delta.Runs)
	}
	if delta.Totals.Rows != 12 {
		t.Fatalf("delta rows = %d, want 12", delta.Totals.Rows)
	}
	if delta.Accum.HashProbes != 50 || delta.Accum.MarkerClears != 1 {
		t.Fatalf("delta accum = %+v", delta.Accum)
	}
	if len(delta.Phases) != 1 || delta.Phases[0].Count != 1 {
		t.Fatalf("delta phases = %+v", delta.Phases)
	}
}

func TestResetAndReuse(t *testing.T) {
	r := NewRecorder()
	r.WorkerSlots(2)[1].Tiles.Store(7)
	r.AddRun()
	r.Reset()
	s := r.Stats()
	if s.Runs != 0 || s.Totals.Tiles != 0 {
		t.Fatalf("reset did not clear: %+v", s)
	}
	// Slots survive reset (zeroed), so a reused recorder keeps its arena.
	if len(s.Workers) != 2 {
		t.Fatalf("worker slots after reset = %d, want 2", len(s.Workers))
	}
}

func TestStatsJSONRoundTrip(t *testing.T) {
	r := NewRecorder()
	slots := r.WorkerSlots(2)
	slots[0].Tiles.Store(3)
	slots[0].Rows.Store(30)
	slots[0].Flops.Store(900)
	slots[0].CoIterPicks.Store(5)
	slots[0].LinearPicks.Store(7)
	slots[0].Gathered.Store(12)
	slots[1].Tiles.Store(1)
	slots[1].Rows.Store(10)
	slots[1].Flops.Store(300)
	r.Span(PhaseExecKernel)()
	r.Span(PhaseExecAssemble)()
	r.AddAccum(AccumCounters{MarkerClears: 2, HashProbes: 40, HashCollisions: 3})
	r.AddRun()

	data, err := MarshalJSONBytes(r.Stats())
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateStatsJSON(data); err != nil {
		t.Fatalf("round trip: %v\n%s", err, data)
	}
	for _, want := range []string{`"schema"`, `"co_iter_picks"`, `"imbalance"`, `"marker_clears"`, `"exec.kernel"`} {
		if !bytes.Contains(data, []byte(want)) {
			t.Fatalf("JSON missing %s:\n%s", want, data)
		}
	}
}

func TestValidateStatsJSONRejects(t *testing.T) {
	cases := map[string]string{
		"unknown field": `{"schema":"` + StatsSchema + `","bogus":1}`,
		"wrong schema":  `{"schema":"other/v9"}`,
		"not json":      `]]]`,
	}
	for name, doc := range cases {
		if err := ValidateStatsJSON([]byte(doc)); err == nil {
			t.Errorf("%s: validation passed, want error", name)
		}
	}
}

func TestPhaseNames(t *testing.T) {
	seen := map[string]bool{}
	for p := Phase(0); p < numPhases; p++ {
		name := p.String()
		if name == "unknown" || seen[name] {
			t.Fatalf("phase %d has bad/duplicate name %q", p, name)
		}
		if !strings.Contains(name, ".") {
			t.Fatalf("phase name %q not namespaced", name)
		}
		seen[name] = true
	}
	if Phase(-1).String() != "unknown" || Phase(99).String() != "unknown" {
		t.Fatal("out-of-range phases should stringify to unknown")
	}
}
