package obs

import (
	"testing"
	"time"
)

// TestRunScopeIsolatesOverlappingRuns is the regression test for the
// span-misattribution bug: two runs in flight on ONE recorder (a fused
// chain's two products, or concurrent Multiply calls sharing a
// recorder) must each publish a snapshot containing only their own
// spans and counters, while the cumulative totals see the exact sum —
// no double counting, no bleed.
func TestRunScopeIsolatesOverlappingRuns(t *testing.T) {
	r := NewRecorder()

	sa := r.StartRun()
	sb := r.StartRun()
	if sa.Seq() == sb.Seq() {
		t.Fatalf("overlapping scopes share sequence id %d", sa.Seq())
	}

	// Interleave: both scopes record while the other is open.
	doneA := sa.Span(PhaseExecKernel)
	wa := sa.WorkerSlots(1)
	wa[0].Flops.Add(100)
	wa[0].Tiles.Add(4)

	doneB := sb.Span(PhaseExecKernel)
	wb := sb.WorkerSlots(2)
	wb[0].Flops.Add(7)
	wb[1].Flops.Add(13)
	sb.AddAccum(AccumCounters{HashProbes: 50, HashCollisions: 5})
	sb.AddFused(FusedCounters{StreamRuns: 1})
	time.Sleep(time.Millisecond)
	doneB()
	sb.MarkComplete()
	snapB := sb.End()

	if snapB.Seq != 2 || snapB.Runs != 1 {
		t.Fatalf("B snapshot seq=%d runs=%d, want 2/1", snapB.Seq, snapB.Runs)
	}
	if snapB.Totals.Flops != 20 || snapB.Totals.Tiles != 0 {
		t.Fatalf("B totals %+v include A's counters", snapB.Totals)
	}
	if snapB.Accum.HashProbes != 50 || snapB.Fused.StreamRuns != 1 {
		t.Fatalf("B lost its own accum/fused deltas: %+v %+v", snapB.Accum, snapB.Fused)
	}

	// A is still open; LastRun must already serve B's isolated snapshot.
	if last, ok := r.LastRun(); !ok || last.Seq != snapB.Seq || last.Totals.Flops != 20 {
		t.Fatalf("LastRun = %+v ok=%v, want B's snapshot", last.Totals, ok)
	}

	sa.AddPool(PoolCounters{Hits: 3})
	doneA()
	sa.MarkComplete()
	snapA := sa.End()

	if snapA.Seq != 1 || snapA.Runs != 1 {
		t.Fatalf("A snapshot seq=%d runs=%d, want 1/1", snapA.Seq, snapA.Runs)
	}
	if snapA.Totals.Flops != 100 || snapA.Totals.Tiles != 4 {
		t.Fatalf("A totals %+v include B's counters", snapA.Totals)
	}
	if snapA.Accum.HashProbes != 0 || snapA.Fused.StreamRuns != 0 {
		t.Fatalf("A absorbed B's accum/fused deltas: %+v %+v", snapA.Accum, snapA.Fused)
	}
	if snapA.Pool.Hits != 3 {
		t.Fatalf("A lost its pool delta: %+v", snapA.Pool)
	}

	// Cumulative totals are the exact sum of both runs, counted once.
	sum := r.Stats()
	if sum.Runs != 2 {
		t.Fatalf("cumulative runs = %d, want 2", sum.Runs)
	}
	if sum.Totals.Flops != 120 || sum.Totals.Tiles != 4 {
		t.Fatalf("cumulative totals %+v, want the sum of both runs", sum.Totals)
	}
	if sum.Accum.HashProbes != 50 || sum.Pool.Hits != 3 || sum.Fused.StreamRuns != 1 {
		t.Fatalf("cumulative deltas folded wrong: %+v %+v %+v", sum.Accum, sum.Pool, sum.Fused)
	}
}

// TestRunScopeIncompleteRunNotCounted: a run that errors out before
// MarkComplete folds its partial spans into the totals but must not
// inflate the run count or overwrite LastRun.
func TestRunScopeIncompleteRunNotCounted(t *testing.T) {
	r := NewRecorder()

	ok1 := r.StartRun()
	w := ok1.WorkerSlots(1)
	w[0].Flops.Add(10)
	ok1.MarkComplete()
	ok1.End()

	failed := r.StartRun()
	fw := failed.WorkerSlots(1)
	fw[0].Flops.Add(999)
	failed.End() // no MarkComplete: the kernel errored mid-pipeline

	if last, ok := r.LastRun(); !ok || last.Totals.Flops != 10 {
		t.Fatalf("LastRun = %+v ok=%v, want the completed run's snapshot", last.Totals, ok)
	}
	sum := r.Stats()
	if sum.Runs != 1 {
		t.Fatalf("runs = %d, want 1 (failed run must not count)", sum.Runs)
	}
	if sum.Totals.Flops != 1009 {
		t.Fatalf("totals %+v, want partial work folded in exactly once", sum.Totals)
	}
}

// TestRunScopeRecyclesWorkerBlocks: warm loops must not allocate a
// counter block per run — End returns the blocks to the recorder's
// scope pool and StartRun checks them out again.
func TestRunScopeRecyclesWorkerBlocks(t *testing.T) {
	r := NewRecorder()
	s := r.StartRun()
	s.WorkerSlots(4)
	s.MarkComplete()
	s.End()

	allocs := testing.AllocsPerRun(50, func() {
		s := r.StartRun()
		s.WorkerSlots(4)
		s.MarkComplete()
		s.End()
	})
	// One allocation per run is the *RunScope itself; the worker blocks
	// and snapshot buffers must come from the pool. The snapshot's
	// Workers/Phases slices are built per End, so allow their backing
	// arrays too — the pin is on the padded counter blocks, which
	// dominate (4 cache-line-padded workers ≫ a few slice headers).
	if allocs > 8 {
		t.Fatalf("warm scope cycle allocates %.0f times per run, want the pooled steady state", allocs)
	}
}
