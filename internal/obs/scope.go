package obs

import (
	"context"
	"time"
)

// RunScope scopes one multiply's observability data under a unique
// sequence id. Before scopes, every span and counter went straight into
// the Recorder's shared totals, so two multiplies in flight on one
// Recorder — a fused chain interleaving its two products, or concurrent
// Multiply calls sharing a recorder — bled into each other and
// Stats.Sub double-counted the overlap. A scope collects one run's
// spans, worker counters and accumulator/pool/fused deltas privately;
// End folds them into the recorder's cumulative totals exactly once and
// publishes the per-run snapshot (Recorder.LastRun), so per-multiply
// attribution no longer depends on subtracting racing global snapshots.
//
// A nil *RunScope (from a nil Recorder) disables everything: every
// method nil-checks and the disabled paths allocate nothing. A scope is
// owned by one run: its methods may be called from that run's worker
// goroutines (WorkerSlots hands each worker a private padded block),
// but Start/End pair once.
type RunScope struct {
	r   *Recorder
	seq int64
	// start anchors the run's wall-clock latency, pushed to the live
	// telemetry sink (Recorder.emitRun) when a completed scope ends.
	start time.Time

	spans  [numPhases]time.Duration
	counts [numPhases]int64
	// workers is checked out of the recorder's scope pool and returned
	// by End, so warm loops do not allocate a counter block per run.
	workers []WorkerCounters
	accum   AccumCounters
	pool    PoolCounters
	fused   FusedCounters
	sched   SchedCounters
	// completed marks the run as having finished its kernel; End counts
	// only completed runs toward Runs and LastRun, so a run that errors
	// out mid-pipeline still folds its partial spans into the cumulative
	// totals without inflating the run count.
	completed bool
}

// StartRun opens a new run scope with a fresh sequence id. Nil
// recorders return a nil scope (whose methods are all no-ops).
func (r *Recorder) StartRun() *RunScope {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	r.seq++
	seq := r.seq
	var workers []WorkerCounters
	if n := len(r.scopePool); n > 0 {
		workers = r.scopePool[n-1]
		r.scopePool[n-1] = nil
		r.scopePool = r.scopePool[:n-1]
	}
	r.mu.Unlock()
	r.EventSeq(seq, EventRunStart, PhaseNone, 0, 0)
	return &RunScope{r: r, seq: seq, start: time.Now(), workers: workers}
}

// Seq returns the scope's multiply sequence id (0 for nil scopes).
func (s *RunScope) Seq() int64 {
	if s == nil {
		return 0
	}
	return s.seq
}

// Enabled reports whether the scope records anything (false for nil).
func (s *RunScope) Enabled() bool { return s != nil }

// Span starts a phase span scoped to this run and returns its closer.
// The span accumulates into the scope only; End publishes it. Safe to
// call from the single goroutine driving the run's phases.
func (s *RunScope) Span(p Phase) func() {
	if s == nil {
		return nop
	}
	start := time.Now()
	return func() {
		d := time.Since(start)
		s.spans[p] += d
		s.counts[p]++
		s.r.emitPhase(s.seq, p, d)
	}
}

// Event forwards a structured flight-recorder event scoped to this
// run's sequence id. Nil-safe; with no sink attached the cost is one
// nil check and one atomic load.
//
//spgemm:hotpath
func (s *RunScope) Event(k EventKind, p Phase, a, b int64) {
	if s == nil {
		return
	}
	s.r.EventSeq(s.seq, k, p, a, b)
}

// Do runs f under the recorder's pprof phase label (see Recorder.Do).
func (s *RunScope) Do(ctx context.Context, p Phase, f func()) {
	if s == nil {
		f()
		return
	}
	s.r.Do(ctx, p, f)
}

// TileRegion opens a runtime/trace region for one tile batch (see
// Recorder.TileRegion).
func (s *RunScope) TileRegion(ctx context.Context) func() {
	if s == nil {
		return nop
	}
	return s.r.TileRegion(ctx)
}

// WorkerSlots returns n per-worker counter blocks private to this run,
// growing the scope's pooled backing array if needed. Returns nil on a
// nil scope.
func (s *RunScope) WorkerSlots(n int) []WorkerCounters {
	if s == nil {
		return nil
	}
	if len(s.workers) < n {
		grown := make([]WorkerCounters, n)
		for i := range s.workers {
			grown[i].copyFrom(&s.workers[i])
		}
		s.workers = grown
	}
	return s.workers[:n]
}

// AddAccum folds accumulator statistics (a per-run delta) into the scope.
func (s *RunScope) AddAccum(a AccumCounters) {
	if s == nil {
		return
	}
	s.accum.MarkerClears += a.MarkerClears
	s.accum.TableGrows += a.TableGrows
	s.accum.HashProbes += a.HashProbes
	s.accum.HashCollisions += a.HashCollisions
}

// AddPool folds execution-engine pool statistics into the scope.
func (s *RunScope) AddPool(p PoolCounters) {
	if s == nil {
		return
	}
	s.pool.Hits += p.Hits
	s.pool.Misses += p.Misses
	s.pool.Steals += p.Steals
	s.pool.Resizes += p.Resizes
	s.pool.Evictions += p.Evictions
	s.pool.Quarantined += p.Quarantined
	s.pool.PlanHits += p.PlanHits
	s.pool.PlanMisses += p.PlanMisses
}

// AddFused folds fused-pipeline statistics into the scope.
func (s *RunScope) AddFused(f FusedCounters) {
	if s == nil {
		return
	}
	s.fused.Add(f)
}

// AddSched folds wave-executor statistics into the scope.
func (s *RunScope) AddSched(c SchedCounters) {
	if s == nil {
		return
	}
	s.sched.add(c)
}

// MarkComplete flags the run as having finished successfully, so End
// counts it toward Recorder runs and publishes it as LastRun.
func (s *RunScope) MarkComplete() {
	if s == nil {
		return
	}
	s.completed = true
}

// stats renders the scope's private data as a per-run Stats snapshot.
// Runs is 1 only once the run is marked complete.
func (s *RunScope) stats() Stats {
	out := Stats{Schema: StatsSchema, Seq: s.seq}
	if s.completed {
		out.Runs = 1
	}
	for p := Phase(0); p < numPhases; p++ {
		if s.counts[p] == 0 {
			continue
		}
		out.Phases = append(out.Phases, PhaseStats{
			Phase:  Phase(p).String(),
			Millis: float64(s.spans[p]) / float64(time.Millisecond),
			Count:  s.counts[p],
		})
	}
	for w := range s.workers {
		c := &s.workers[w]
		out.Workers = append(out.Workers, WorkerStats{
			Worker: w,
			CounterSet: CounterSet{
				Tiles:       c.Tiles.Load(),
				Rows:        c.Rows.Load(),
				Flops:       c.Flops.Load(),
				CoIterPicks: c.CoIterPicks.Load(),
				LinearPicks: c.LinearPicks.Load(),
				Gathered:    c.Gathered.Load(),
			},
		})
	}
	out.Accum = s.accum
	out.Pool = s.pool
	out.Fused = s.fused
	out.Sched = s.sched
	out.finalize()
	return out
}

// End folds the scope into the recorder's cumulative totals exactly
// once, publishes the per-run snapshot as Recorder.LastRun, recycles
// the worker blocks, and returns the snapshot. Safe on nil scopes
// (returns a zero snapshot). The scope must not be used after End.
func (s *RunScope) End() Stats {
	if s == nil {
		return Stats{Schema: StatsSchema}
	}
	snap := s.stats()
	if s.completed {
		s.r.emitRun(time.Since(s.start))
		s.r.EventSeq(s.seq, EventRunEnd, PhaseNone, snap.Totals.Tiles, snap.Totals.Gathered)
	}
	s.r.foldScope(s, snap)
	s.r = nil
	s.workers = nil
	return snap
}

// foldScope merges one ended scope into the cumulative totals, counts
// completed runs, publishes the snapshot as LastRun, and returns the
// scope's worker blocks to the pool. Called exactly once per scope, by
// End, which guarantees a non-nil receiver.
func (r *Recorder) foldScope(s *RunScope, snap Stats) {
	r.mu.Lock()
	for p := Phase(0); p < numPhases; p++ {
		r.spans[p] += s.spans[p]
		r.counts[p] += s.counts[p]
	}
	if len(r.workers) < len(s.workers) {
		grown := make([]WorkerCounters, len(s.workers))
		for i := range r.workers {
			grown[i].copyFrom(&r.workers[i])
		}
		r.workers = grown
	}
	for w := range s.workers {
		r.workers[w].addFrom(&s.workers[w])
		s.workers[w].reset()
	}
	r.accum.MarkerClears += s.accum.MarkerClears
	r.accum.TableGrows += s.accum.TableGrows
	r.accum.HashProbes += s.accum.HashProbes
	r.accum.HashCollisions += s.accum.HashCollisions
	r.pool.Hits += s.pool.Hits
	r.pool.Misses += s.pool.Misses
	r.pool.Steals += s.pool.Steals
	r.pool.Resizes += s.pool.Resizes
	r.pool.Evictions += s.pool.Evictions
	r.pool.Quarantined += s.pool.Quarantined
	r.pool.PlanHits += s.pool.PlanHits
	r.pool.PlanMisses += s.pool.PlanMisses
	r.fused.Add(s.fused)
	r.sched.add(s.sched)
	if s.completed {
		r.runs++
		r.lastRun = snap
		r.hasLast = true
	}
	if s.workers != nil {
		r.scopePool = append(r.scopePool, s.workers)
	}
	r.mu.Unlock()
}

// LastRun returns the per-run snapshot of the most recently ended run
// scope — the run's own spans and counters, isolated by its sequence id
// rather than by subtracting global snapshots (which double-counts when
// runs overlap). ok is false when no scoped run has completed (or the
// recorder is nil).
func (r *Recorder) LastRun() (Stats, bool) {
	if r == nil {
		return Stats{Schema: StatsSchema}, false
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.lastRun, r.hasLast
}
