package exec

import (
	"errors"
	"fmt"

	"maskedspgemm/internal/accum"
)

// poolChecker is implemented by every pooled object so SelfCheck can
// validate the clean-reuse invariant without knowing the generic
// instantiation.
type poolChecker interface {
	poolCheck() error
}

// SelfCheck validates the engine's pool invariants: the idle gauge
// matches the hot-tier population, and every pooled workspace is
// released (unbound from any engine), unpoisoned, and clean — dense
// scratch fully reset, explicit-reset accumulators with every live slot
// accounted for. It is the chaos suite's gate: after a seeded fault
// matrix, a non-nil result means a dirty or leaked workspace survived
// quarantine. O(pooled state), intended for tests and admin probes,
// not hot paths. Nil engines trivially pass.
//
// Only the counted hot tier is walked: the overflow sync.Pool tier is
// GC-owned and cannot be enumerated, but workspaces only reach it
// through put, which quarantine already guards.
func (e *Engine) SelfCheck() error {
	if e == nil {
		return nil
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	population := 0
	for key, b := range e.buckets {
		for i := range b.hot {
			population++
			pc, ok := b.hot[i].ws.(poolChecker)
			if !ok {
				return fmt.Errorf("exec: pooled object %T is not self-checkable", b.hot[i].ws)
			}
			if err := pc.poolCheck(); err != nil {
				return fmt.Errorf("exec: bucket %v slot %d: %w", key, i, err)
			}
		}
	}
	if population != e.idle {
		return fmt.Errorf("exec: idle gauge %d != hot-tier population %d", e.idle, population)
	}
	return nil
}

// poolCheck validates one pooled workspace's clean-reuse invariant.
func (ws *Workspace[T, S]) poolCheck() error {
	if ws.engine != nil {
		return errors.New("pooled workspace still bound to an engine")
	}
	if ws.poisoned {
		return errors.New("poisoned workspace present in pool")
	}
	for w := range ws.Dense {
		d := &ws.Dense[w]
		if len(d.Touched) != 0 {
			return fmt.Errorf("dense scratch %d holds %d unreset touched slots", w, len(d.Touched))
		}
		for j, s := range d.State {
			if s != 0 {
				return fmt.Errorf("dense scratch %d state[%d] = %d, want 0", w, j, s)
			}
		}
	}
	for w, acc := range ws.Accs {
		if c, ok := acc.(accum.Checkable); ok {
			if err := c.CheckClean(); err != nil {
				return fmt.Errorf("accumulator %d: %w", w, err)
			}
		}
	}
	return nil
}
