package exec

import (
	"math"
	"sync"
	"sync/atomic"

	"maskedspgemm/internal/sparse"
)

// TuneKey fingerprints an operand *family* rather than an operand
// identity: ceil-log2 size classes of each operand's rows, columns and
// nnz. Iterative algorithms rebuild their matrices every round — the
// k-truss prune emits a fresh CSR per iteration, BC swaps frontiers —
// so identity-keyed state (like the plan cache's PlanKey) would reset
// adaptive tuning each round. Size-class keying makes rounds with
// similar shape share one tuning cell, which is exactly the granularity
// at which a learned κ transfers: the Eq. 3 trade-off depends on row
// densities, not on which concrete matrix carries them.
type TuneKey struct {
	MRows, MCols, MNNZ uint8
	ARows, ACols, ANNZ uint8
	BRows, BCols, BNNZ uint8
}

// TuneKeyOf fingerprints the operand family of C = M ⊙ (A × B) with the
// same ceil-log2 size classes the workspace pool buckets by. Nil
// operands contribute zero classes.
func TuneKeyOf[T sparse.Number](m, a, b *sparse.CSR[T]) TuneKey {
	var k TuneKey
	if m != nil {
		k.MRows, k.MCols, k.MNNZ = sizeClass(m.Rows), sizeClass(m.Cols), sizeClass64(m.NNZ())
	}
	if a != nil {
		k.ARows, k.ACols, k.ANNZ = sizeClass(a.Rows), sizeClass(a.Cols), sizeClass64(a.NNZ())
	}
	if b != nil {
		k.BRows, k.BCols, k.BNNZ = sizeClass(b.Rows), sizeClass(b.Cols), sizeClass64(b.NNZ())
	}
	return k
}

// Tuning is one adaptive-tuning cell cached by the engine: an
// atomically published κ override plus opaque recalibration state owned
// by the model layer (stored as `any` to keep exec free of a model
// dependency — model imports exec, not the reverse). The κ override is
// the hot-path read: kernels load it with one atomic op per run and
// never take the state lock.
type Tuning struct {
	// kappaBits holds math.Float64bits of the override; 0 means unset.
	// (κ = 0 is not a valid override — Hybrid requires κ > 0 — so the
	// zero bit pattern is free to mean "no override".)
	kappaBits atomic.Uint64

	mu    sync.Mutex
	state any
}

// Kappa returns the published κ override, ok=false when unset (or on a
// nil cell).
func (t *Tuning) Kappa() (float64, bool) {
	if t == nil {
		return 0, false
	}
	bits := t.kappaBits.Load()
	if bits == 0 {
		return 0, false
	}
	return math.Float64frombits(bits), true
}

// SetKappa publishes a κ override; kappa <= 0 clears it. No-op on nil.
func (t *Tuning) SetKappa(kappa float64) {
	if t == nil {
		return
	}
	if kappa <= 0 {
		t.kappaBits.Store(0)
		return
	}
	t.kappaBits.Store(math.Float64bits(kappa))
}

// Update runs f on the cell's opaque state under the cell's lock and
// stores the returned value as the new state. The model layer uses it
// to lazily install and then mutate its recalibrator. No-op on nil.
func (t *Tuning) Update(f func(state any) any) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.state = f(t.state)
	t.mu.Unlock()
}

// tuneEntry is one cached tuning cell with its LRU stamp.
type tuneEntry struct {
	t     *Tuning
	stamp uint64
}

// Tuning returns the adaptive-tuning cell for key, creating it on first
// use. Cells are cached under the same LRU discipline (and capacity
// knob) as plans — tuning state is tiny, so plan-cache depth is a safe
// bound. A nil engine (or a disabled plan cache) returns nil, which
// every Tuning method treats as "adaptation off".
func (e *Engine) Tuning(key TuneKey) *Tuning {
	if e == nil || e.maxPlans() == 0 {
		return nil
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.tunings == nil {
		e.tunings = make(map[TuneKey]*tuneEntry)
	}
	e.tuneClock++
	if ent, ok := e.tunings[key]; ok {
		ent.stamp = e.tuneClock
		return ent.t
	}
	ent := &tuneEntry{t: &Tuning{}, stamp: e.tuneClock}
	e.tunings[key] = ent
	for len(e.tunings) > e.maxPlans() {
		e.evictTuningLocked()
	}
	return ent.t
}

// evictTuningLocked drops the least recently used tuning cell. Caller
// holds e.mu.
func (e *Engine) evictTuningLocked() {
	var victim TuneKey
	best := ^uint64(0)
	found := false
	for k, ent := range e.tunings {
		if ent.stamp < best {
			best, victim, found = ent.stamp, k, true
		}
	}
	if found {
		delete(e.tunings, victim)
	}
}
