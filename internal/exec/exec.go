// Package exec is the execution-engine layer between the tiling/accum
// substrate and the core kernels: it owns the mutable state a masked
// SpGEMM needs at run time — accumulators, tile output buffers, dense
// scratch — and the structural plans (tile boundaries, accumulator row
// capacities) that are expensive to rebuild.
//
// The paper's measurement loop and every iterative graph algorithm
// built on the kernel re-execute C = M ⊙ (A × B) many times. Before
// this layer, each one-shot call re-planned the tiles (an O(nnz)
// prefix-sum pipeline) and re-allocated a dense-column-dimension
// accumulator per worker, per call. An Engine amortizes both across
// calls *and* across callers:
//
//   - Workspaces (see Workspace) are pooled in size-class buckets keyed
//     by (accumulator kind, marker bits, column-dimension class, row-cap
//     class). The pool is tiered: a bounded hot tier retains the most
//     recently used workspaces under an LRU cap with exact hit/miss/
//     steal/evict accounting, and evictions overflow into a sync.Pool
//     tier the garbage collector drains under memory pressure.
//   - Plans are cached under a structural fingerprint (operand identity
//     plus dimensions, nnz and the plan-shaping knobs), so repeated products
//     over unchanged structure skip planning entirely. A stale hit can
//     only mis-balance tiles, never mis-compute: any partition of the
//     row space is correct, and accumulators grow on demand.
//
// All Engine methods are safe for concurrent use; independent
// multiplications through one shared Engine never share a workspace.
// A nil *Engine disables pooling and caching: checkouts construct fresh
// state and Release is a no-op, which is exactly the pre-engine
// behavior of the one-shot kernels.
package exec

import (
	"reflect"
	"sync"
	"sync/atomic"

	"maskedspgemm/internal/chaos"
)

// DefaultMaxIdle is the default cap on idle workspaces retained in the
// hot tier across all buckets; the overflow sync.Pool tier is unbounded
// but GC-collectable.
const DefaultMaxIdle = 64

// DefaultMaxPlans is the default plan-cache capacity.
const DefaultMaxPlans = 64

// Config sizes an Engine's retention tiers.
type Config struct {
	// MaxIdle caps the idle workspaces held in the hot tier across all
	// size-class buckets; the least recently returned workspace is
	// demoted to the GC-managed overflow tier when the cap is exceeded.
	// 0 means DefaultMaxIdle; negative disables hot-tier retention.
	MaxIdle int
	// MaxPlans caps the plan cache; least recently used plans are
	// evicted. 0 means DefaultMaxPlans; negative disables plan caching.
	MaxPlans int
	// Chaos, when non-nil, arms the engine's fault-injection seams
	// (workspace checkout/release, plan-cache store). nil — the
	// production configuration — disables injection at the cost of one
	// nil check per seam crossing.
	Chaos chaos.Injector
}

// Engine is a concurrency-safe pool of execution workspaces plus a
// fingerprint-keyed plan cache. One process-wide Engine shared by every
// caller is the intended deployment; independent engines only split the
// reuse pool.
type Engine struct {
	cfg Config

	mu      sync.Mutex
	buckets map[wsKey]*bucket
	idle    int
	clock   uint64

	plans     map[PlanKey]*planEntry
	planClock uint64

	tunings   map[TuneKey]*tuneEntry
	tuneClock uint64

	hits      atomic.Int64
	misses    atomic.Int64
	steals    atomic.Int64
	resizes   atomic.Int64
	evictions atomic.Int64

	planHits   atomic.Int64
	planMisses atomic.Int64

	quarantines atomic.Int64
}

// New returns an Engine with the given retention configuration.
func New(cfg Config) *Engine {
	return &Engine{
		cfg:     cfg,
		buckets: make(map[wsKey]*bucket),
		plans:   make(map[PlanKey]*planEntry),
	}
}

func (e *Engine) maxIdle() int {
	if e.cfg.MaxIdle == 0 {
		return DefaultMaxIdle
	}
	if e.cfg.MaxIdle < 0 {
		return 0
	}
	return e.cfg.MaxIdle
}

func (e *Engine) maxPlans() int {
	if e.cfg.MaxPlans == 0 {
		return DefaultMaxPlans
	}
	if e.cfg.MaxPlans < 0 {
		return 0
	}
	return e.cfg.MaxPlans
}

// PoolStats is a snapshot of an Engine's monotonic counters. Subtract
// two snapshots (Sub) to isolate the activity between them.
type PoolStats struct {
	// Hits counts checkouts served from the pool's exact size-class
	// bucket (either tier).
	Hits int64 `json:"hits"`
	// Misses counts checkouts that had to construct a new workspace.
	Misses int64 `json:"misses"`
	// Steals counts checkouts served by a compatible larger size-class
	// bucket when the exact bucket was empty.
	Steals int64 `json:"steals"`
	// Resizes counts in-place workspace growths (more workers, more
	// tiles, or a larger scratch dimension than the pooled instance had).
	Resizes int64 `json:"resizes"`
	// Evictions counts demotions from the bounded hot tier to the
	// GC-managed overflow tier.
	Evictions int64 `json:"evictions"`
	// PlanHits and PlanMisses count plan-cache outcomes.
	PlanHits   int64 `json:"plan_hits"`
	PlanMisses int64 `json:"plan_misses"`
	// Quarantines counts workspaces poisoned after a panic or
	// mid-run cancellation and dropped at Release instead of being
	// returned to the pool (see Workspace.Poison).
	Quarantines int64 `json:"quarantines"`
}

// Stats snapshots the engine's counters. Nil engines return zeros.
func (e *Engine) Stats() PoolStats {
	if e == nil {
		return PoolStats{}
	}
	return PoolStats{
		Hits:        e.hits.Load(),
		Misses:      e.misses.Load(),
		Steals:      e.steals.Load(),
		Resizes:     e.resizes.Load(),
		Evictions:   e.evictions.Load(),
		PlanHits:    e.planHits.Load(),
		PlanMisses:  e.planMisses.Load(),
		Quarantines: e.quarantines.Load(),
	}
}

// Sub returns the counter-wise difference s − o.
func (s PoolStats) Sub(o PoolStats) PoolStats {
	return PoolStats{
		Hits:        s.Hits - o.Hits,
		Misses:      s.Misses - o.Misses,
		Steals:      s.Steals - o.Steals,
		Resizes:     s.Resizes - o.Resizes,
		Evictions:   s.Evictions - o.Evictions,
		PlanHits:    s.PlanHits - o.PlanHits,
		PlanMisses:  s.PlanMisses - o.PlanMisses,
		Quarantines: s.Quarantines - o.Quarantines,
	}
}

// Lookups is the total number of workspace checkouts in the snapshot.
func (s PoolStats) Lookups() int64 { return s.Hits + s.Steals + s.Misses }

// HitRate is the fraction of checkouts served without construction
// (hits + steals over lookups). A snapshot with no lookups reports 1.
func (s PoolStats) HitRate() float64 {
	l := s.Lookups()
	if l == 0 {
		return 1
	}
	return float64(s.Hits+s.Steals) / float64(l)
}

// Idle reports the current hot-tier occupancy — a gauge, not a counter,
// so it lives outside PoolStats. Nil engines report 0.
func (e *Engine) Idle() int {
	if e == nil {
		return 0
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.idle
}

// wsClass separates workspace shapes that cannot substitute for each
// other: masked-kernel workspaces carry accumulators, dense workspaces
// carry column-dimension scratch vectors.
type wsClass uint8

const (
	classMasked wsClass = iota
	classDense
)

// wsKey is a pool bucket identifier: the workspace's generic
// instantiation (value type × semiring), its class, and the size
// classes of its state. Size classes are ceil-log2, so matrices of
// similar shape share buckets.
type wsKey struct {
	typ        reflect.Type
	class      wsClass
	kind       uint8
	markerBits uint8
	colsClass  uint8
	capClass   uint8
}

// idleWS is one pooled workspace with its LRU stamp.
type idleWS struct {
	ws    any
	stamp uint64
}

// bucket is one size-class bucket: a bounded LIFO hot tier plus a
// GC-managed overflow tier.
type bucket struct {
	hot      []idleWS
	overflow sync.Pool
}

// get serves one workspace for key, trying the exact bucket's hot tier,
// the exact bucket's overflow tier, then a steal from a compatible
// larger bucket. Returns nil on a miss (counted).
//
//spgemm:hotpath
func (e *Engine) get(key wsKey) any {
	e.mu.Lock()
	b := e.buckets[key]
	if b != nil {
		if n := len(b.hot); n > 0 {
			ws := b.hot[n-1].ws
			b.hot[n-1] = idleWS{}
			b.hot = b.hot[:n-1]
			e.idle--
			e.mu.Unlock()
			e.hits.Add(1)
			return ws
		}
	}
	// Exact bucket empty: steal from the smallest compatible bucket
	// whose workspaces are at least as large in every dimension.
	var donor *bucket
	var donorKey wsKey
	for k, cand := range e.buckets {
		if k.typ != key.typ || k.class != key.class || k.kind != key.kind ||
			k.markerBits != key.markerBits ||
			k.colsClass < key.colsClass || k.capClass < key.capClass ||
			len(cand.hot) == 0 {
			continue
		}
		if donor == nil || k.colsClass < donorKey.colsClass ||
			(k.colsClass == donorKey.colsClass && k.capClass < donorKey.capClass) {
			donor, donorKey = cand, k
		}
	}
	if donor != nil {
		n := len(donor.hot)
		ws := donor.hot[n-1].ws
		donor.hot[n-1] = idleWS{}
		donor.hot = donor.hot[:n-1]
		e.idle--
		e.mu.Unlock()
		e.steals.Add(1)
		return ws
	}
	e.mu.Unlock()
	// Overflow tier: workspaces demoted by the LRU cap but not yet
	// collected. sync.Pool is safe outside the engine lock.
	if b != nil {
		if ws := b.overflow.Get(); ws != nil {
			e.hits.Add(1)
			return ws
		}
	}
	e.misses.Add(1)
	return nil
}

// put returns a workspace to its bucket's hot tier, demoting the
// globally least recently returned workspace to its overflow tier when
// the LRU cap is exceeded.
//
//spgemm:hotpath
func (e *Engine) put(key wsKey, ws any) {
	e.mu.Lock()
	b := e.buckets[key]
	if b == nil {
		//lint:ignore hotpathalloc first checkout of a new size class creates its bucket once
		b = &bucket{}
		e.buckets[key] = b
	}
	e.clock++
	b.hot = append(b.hot, idleWS{ws: ws, stamp: e.clock})
	e.idle++
	for e.idle > e.maxIdle() {
		e.evictOldestLocked()
	}
	e.mu.Unlock()
}

// evictOldestLocked demotes the globally oldest hot-tier workspace to
// its bucket's overflow tier. Caller holds e.mu; e.idle > 0.
func (e *Engine) evictOldestLocked() {
	var victim *bucket
	best := ^uint64(0)
	for _, b := range e.buckets {
		if len(b.hot) > 0 && b.hot[0].stamp < best {
			best = b.hot[0].stamp
			victim = b
		}
	}
	if victim == nil {
		e.idle = 0
		return
	}
	ws := victim.hot[0].ws
	n := copy(victim.hot, victim.hot[1:])
	victim.hot[n] = idleWS{}
	victim.hot = victim.hot[:n]
	e.idle--
	e.evictions.Add(1)
	victim.overflow.Put(ws)
}
