package exec

import (
	"errors"
	"sync"
	"testing"

	"maskedspgemm/internal/accum"
	"maskedspgemm/internal/semiring"
	"maskedspgemm/internal/tiling"
)

type sr = semiring.PlusTimes[float64]

func TestNilEngineCheckout(t *testing.T) {
	ws := Masked[float64, sr](nil, sr{}, accum.HashKind, 32, 128, 16, 4, 8)
	if ws == nil || len(ws.Accs) != 4 || len(ws.Outs) != 8 {
		t.Fatalf("nil-engine checkout malformed: %+v", ws)
	}
	ws.Release() // must be a no-op, not a panic
	if (*Workspace[float64, sr])(nil).Release(); false {
		t.Fatal("unreachable")
	}
	var e *Engine
	if s := e.Stats(); s != (PoolStats{}) {
		t.Fatalf("nil engine stats = %+v, want zeros", s)
	}
	if e.Idle() != 0 {
		t.Fatal("nil engine idle != 0")
	}
	p, err := e.Plan(PlanKey{}, func() (Plan, error) { return Plan{RowCap: 7}, nil })
	if err != nil || p.RowCap != 7 {
		t.Fatalf("nil engine Plan = %+v, %v", p, err)
	}
}

func TestPoolHitMissResize(t *testing.T) {
	e := New(Config{})
	ws := Masked[float64, sr](e, sr{}, accum.DenseKind, 32, 100, 5, 2, 4)
	if got := e.Stats(); got.Misses != 1 || got.Hits != 0 {
		t.Fatalf("first checkout stats = %+v, want 1 miss", got)
	}
	if ws.cols != 128 {
		t.Fatalf("cols class-rounded to %d, want 128", ws.cols)
	}
	ws.Release()
	if e.Idle() != 1 {
		t.Fatalf("idle = %d, want 1", e.Idle())
	}
	ws2 := Masked[float64, sr](e, sr{}, accum.DenseKind, 32, 100, 5, 2, 4)
	if ws2 != ws {
		t.Fatal("second checkout did not recycle the released workspace")
	}
	if got := e.Stats(); got.Hits != 1 || got.Misses != 1 || got.Resizes != 0 {
		t.Fatalf("second checkout stats = %+v, want 1 hit, 1 miss, 0 resizes", got)
	}
	ws2.Release()
	// Same class, more workers and tiles: recycled with an in-place grow.
	ws3 := Masked[float64, sr](e, sr{}, accum.DenseKind, 32, 100, 5, 4, 9)
	if ws3 != ws || len(ws3.Accs) != 4 || len(ws3.Outs) != 9 {
		t.Fatalf("grown checkout: ws3==ws %v, accs %d, outs %d", ws3 == ws, len(ws3.Accs), len(ws3.Outs))
	}
	if got := e.Stats(); got.Resizes != 2 {
		t.Fatalf("resizes = %d, want 2 (accs + outs)", got.Resizes)
	}
}

func TestPoolKeyNormalization(t *testing.T) {
	e := New(Config{})
	// Hash accumulators ignore the column dimension: the same workspace
	// must serve wildly different cols at equal rowCap class.
	ws := Masked[float64, sr](e, sr{}, accum.HashKind, 32, 1<<20, 60, 1, 1)
	ws.Release()
	ws2 := Masked[float64, sr](e, sr{}, accum.HashKind, 32, 8, 40, 1, 1)
	if ws2 != ws {
		t.Fatal("hash workspace did not pool across column dimensions")
	}
	ws2.Release()
	// Dense accumulators ignore rowCap.
	dw := Masked[float64, sr](e, sr{}, accum.DenseKind, 32, 64, 3, 1, 1)
	dw.Release()
	dw2 := Masked[float64, sr](e, sr{}, accum.DenseKind, 32, 64, 3000, 1, 1)
	if dw2 != dw {
		t.Fatal("dense workspace did not pool across row capacities")
	}
	// ... but marker width still separates marker-kind buckets.
	dw3 := Masked[float64, sr](e, sr{}, accum.DenseKind, 16, 64, 3, 1, 1)
	if dw3 == dw2 {
		t.Fatal("marker widths must not share a bucket")
	}
}

func TestPoolSteal(t *testing.T) {
	e := New(Config{})
	big := Masked[float64, sr](e, sr{}, accum.DenseKind, 32, 4096, 1, 1, 1)
	big.Release()
	small := Masked[float64, sr](e, sr{}, accum.DenseKind, 32, 256, 1, 1, 1)
	if small != big {
		t.Fatal("smaller request did not steal the larger idle workspace")
	}
	if got := e.Stats(); got.Steals != 1 {
		t.Fatalf("steals = %d, want 1", got.Steals)
	}
	small.Release()
	// A larger request must not steal a smaller workspace.
	huge := Masked[float64, sr](e, sr{}, accum.DenseKind, 32, 1<<16, 1, 1, 1)
	if huge == big {
		t.Fatal("larger request stole a smaller workspace")
	}
	if got := e.Stats(); got.Misses != 2 {
		t.Fatalf("misses = %d, want 2 (big + huge; small was a steal)", got.Misses)
	}
}

func TestPoolEvictionLRUAndOverflow(t *testing.T) {
	e := New(Config{MaxIdle: 2})
	a := Dense[float64, sr](e, sr{}, 64, 1, 1)
	b := Dense[float64, sr](e, sr{}, 64, 1, 1)
	c := Dense[float64, sr](e, sr{}, 64, 1, 1)
	a.Release()
	b.Release()
	c.Release() // exceeds MaxIdle=2 → a (oldest) demoted to overflow
	if got := e.Stats(); got.Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", got.Evictions)
	}
	if e.Idle() != 2 {
		t.Fatalf("idle = %d, want 2", e.Idle())
	}
	// Hot tier serves LIFO (c then b); the demoted a is still reachable
	// through the overflow tier, counted as a hit, not a miss.
	w1 := Dense[float64, sr](e, sr{}, 64, 1, 1)
	w2 := Dense[float64, sr](e, sr{}, 64, 1, 1)
	w3 := Dense[float64, sr](e, sr{}, 64, 1, 1)
	if w1 != c || w2 != b {
		t.Fatal("hot tier not LIFO")
	}
	if w3 != a {
		t.Skip("overflow tier drained by GC; nothing to assert")
	}
	if got := e.Stats(); got.Misses != 3 || got.Hits != 3 {
		t.Fatalf("stats = %+v, want 3 misses + 3 hits", got)
	}
}

func TestPoolDisabledRetention(t *testing.T) {
	e := New(Config{MaxIdle: -1})
	ws := Dense[float64, sr](e, sr{}, 64, 1, 1)
	ws.Release()
	if e.Idle() != 0 {
		t.Fatalf("idle = %d, want 0 with retention disabled", e.Idle())
	}
	if got := e.Stats(); got.Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", got.Evictions)
	}
}

func TestHitRate(t *testing.T) {
	if r := (PoolStats{}).HitRate(); r != 1 {
		t.Fatalf("empty snapshot hit rate = %v, want 1", r)
	}
	s := PoolStats{Hits: 8, Steals: 1, Misses: 1}
	if r := s.HitRate(); r != 0.9 {
		t.Fatalf("hit rate = %v, want 0.9", r)
	}
	d := PoolStats{Hits: 10, Misses: 2}.Sub(PoolStats{Hits: 8, Misses: 1})
	if d.Hits != 2 || d.Misses != 1 {
		t.Fatalf("Sub = %+v", d)
	}
}

func TestPlanCache(t *testing.T) {
	e := New(Config{MaxPlans: 2})
	builds := 0
	build := func() (Plan, error) {
		builds++
		return Plan{Tiles: []tiling.Tile{{Lo: 0, Hi: 4}}, RowCap: 3}, nil
	}
	k1 := PlanKey{Tiles: 8, M: OperandID{Rows: 4, Cols: 4, NNZ: 9}}
	p, err := e.Plan(k1, build)
	if err != nil || p.RowCap != 3 || builds != 1 {
		t.Fatalf("first Plan: %+v, %v, builds=%d", p, err, builds)
	}
	if _, err := e.Plan(k1, build); err != nil || builds != 1 {
		t.Fatalf("second Plan rebuilt (builds=%d)", builds)
	}
	if got := e.Stats(); got.PlanHits != 1 || got.PlanMisses != 1 {
		t.Fatalf("plan stats = %+v", got)
	}
	// Errors are returned uncached.
	boom := errors.New("boom")
	kErr := PlanKey{Tiles: 9}
	if _, err := e.Plan(kErr, func() (Plan, error) { return Plan{}, boom }); !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if _, err := e.Plan(kErr, build); err != nil || builds != 2 {
		t.Fatalf("failed build was cached (builds=%d, err=%v)", builds, err)
	}
	// LRU eviction at MaxPlans=2: touching k1 keeps it; adding a third
	// key evicts kErr.
	if _, err := e.Plan(k1, build); err != nil {
		t.Fatal(err)
	}
	k3 := PlanKey{Tiles: 10}
	if _, err := e.Plan(k3, build); err != nil || builds != 3 {
		t.Fatalf("k3 build: builds=%d, err=%v", builds, err)
	}
	if _, err := e.Plan(kErr, build); err != nil || builds != 4 {
		t.Fatalf("kErr should have been evicted (builds=%d)", builds)
	}
	if _, err := e.Plan(k1, build); err != nil || builds != 5 {
		t.Fatalf("k1 should have been evicted after kErr re-entry (builds=%d)", builds)
	}
}

func TestPlanCacheDisabled(t *testing.T) {
	e := New(Config{MaxPlans: -1})
	builds := 0
	build := func() (Plan, error) { builds++; return Plan{}, nil }
	for i := 0; i < 3; i++ {
		if _, err := e.Plan(PlanKey{Tiles: 1}, build); err != nil {
			t.Fatal(err)
		}
	}
	if builds != 3 {
		t.Fatalf("disabled cache still cached (builds=%d)", builds)
	}
}

// TestConcurrentCheckout hammers one engine from many goroutines under
// -race: every goroutine must get a private workspace, and the counters
// must balance exactly.
func TestConcurrentCheckout(t *testing.T) {
	e := New(Config{MaxIdle: 4})
	const goroutines = 16
	const rounds = 200
	var mu sync.Mutex
	inUse := make(map[*Workspace[float64, sr]]bool)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				ws := Masked[float64, sr](e, sr{}, accum.HashKind, 32, 1024, 64, 2, 4)
				mu.Lock()
				if inUse[ws] {
					mu.Unlock()
					t.Errorf("workspace checked out twice concurrently")
					return
				}
				inUse[ws] = true
				mu.Unlock()
				// Touch the state a real run would.
				ws.Accs[0].BeginRow()
				ws.Outs[0].Cols = ws.Outs[0].Cols[:0]
				mu.Lock()
				delete(inUse, ws)
				mu.Unlock()
				ws.Release()
			}
		}(g)
	}
	wg.Wait()
	got := e.Stats()
	if got.Lookups() != goroutines*rounds {
		t.Fatalf("lookups = %d, want %d", got.Lookups(), goroutines*rounds)
	}
	if got.HitRate() < 0.5 {
		t.Fatalf("hit rate %.2f suspiciously low for a hammered pool", got.HitRate())
	}
}

// TestConcurrentPlan races many goroutines over one plan key: the plan
// must build a bounded number of times and every caller must observe a
// valid plan.
func TestConcurrentPlan(t *testing.T) {
	e := New(Config{})
	key := PlanKey{Tiles: 4, M: OperandID{Rows: 10, NNZ: 50}}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				p, err := e.Plan(key, func() (Plan, error) {
					return Plan{Tiles: []tiling.Tile{{Lo: 0, Hi: 10}}, RowCap: 5}, nil
				})
				if err != nil || p.RowCap != 5 || len(p.Tiles) != 1 {
					t.Errorf("Plan = %+v, %v", p, err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if got := e.Stats(); got.PlanHits+got.PlanMisses != 800 {
		t.Fatalf("plan lookups = %d, want 800", got.PlanHits+got.PlanMisses)
	}
}

// TestCheckoutSteadyStateAllocs pins the pool's reason to exist: a warm
// checkout/release cycle performs zero allocations.
func TestCheckoutSteadyStateAllocs(t *testing.T) {
	e := New(Config{})
	Masked[float64, sr](e, sr{}, accum.HashKind, 32, 1024, 64, 2, 4).Release()
	allocs := testing.AllocsPerRun(100, func() {
		ws := Masked[float64, sr](e, sr{}, accum.HashKind, 32, 1024, 64, 2, 4)
		ws.Release()
	})
	if allocs != 0 {
		t.Fatalf("warm checkout/release allocates %.1f times, want 0", allocs)
	}
	p := New(Config{})
	key := PlanKey{Tiles: 4}
	build := func() (Plan, error) { return Plan{RowCap: 1}, nil }
	if _, err := p.Plan(key, build); err != nil {
		t.Fatal(err)
	}
	allocs = testing.AllocsPerRun(100, func() {
		if _, err := p.Plan(key, build); err != nil {
			panic(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("warm plan lookup allocates %.1f times, want 0", allocs)
	}
}
