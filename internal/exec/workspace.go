package exec

import (
	"math/bits"
	"reflect"

	"maskedspgemm/internal/accum"
	"maskedspgemm/internal/chaos"
	"maskedspgemm/internal/semiring"
	"maskedspgemm/internal/sparse"
)

// Workspace is the operand-independent half of a masked-SpGEMM
// execution: every mutable buffer a run needs, none of the operand
// structure. It is checked out of an Engine (Masked or Dense), used for
// one run — or held across the iterations of an algorithm loop — and
// returned with Release. A workspace checked out of a nil Engine is an
// ordinary heap object whose Release is a no-op, so every kernel can be
// written against the checkout/release protocol unconditionally.
//
// Workspaces are sized by ceil-log2 classes of the column dimension and
// the accumulator row capacity, so a pooled instance serves any request
// of its class or smaller; growth (more workers, more tiles, a larger
// scratch dimension) happens in place and is counted as a resize.
//
// Invariant for pooled reuse: accumulators carry marker state that makes
// anything stale invisible (or, for the explicit-reset kinds, are left
// clean after each row), and DenseScratch users must reset the slots
// they touched (via Touched) before the workspace is released. Kernels
// in internal/core maintain this; it is what makes a recycled workspace
// indistinguishable from a fresh one.
type Workspace[T sparse.Number, S semiring.Semiring[T]] struct {
	engine *Engine
	key    wsKey
	// poisoned marks a workspace whose clean-reuse invariant can no
	// longer be trusted — its run panicked or was cancelled mid-tile.
	// Release drops a poisoned workspace (counted as a quarantine)
	// instead of returning it to the pool.
	poisoned bool

	sr         S
	kind       accum.Kind
	markerBits int
	cols       int   // size-class capacity of the column dimension
	rowCap     int64 // size-class bound on accumulator row entries

	// Accs holds one accumulator per worker; Accs[w] is owned by worker
	// w for the duration of a run.
	Accs []accum.Accumulator[T]
	// Outs holds the per-tile output staging buffers; slice it to the
	// run's tile count.
	Outs []TileBuf[T]
	// Dense holds one dense column-dimension scratch block per worker
	// (complement, 2D and vector kernels).
	Dense []DenseScratch[T]

	// ScratchCols/ScratchVals are general append-staging slices for
	// single-threaded callers (ewise, reductions). Callers append onto
	// scratch[:0] and store the grown slice back.
	ScratchCols []sparse.Index
	ScratchVals []T
}

// TileBuf stages one tile's slice of the result before assembly.
type TileBuf[T sparse.Number] struct {
	RowNNZ []int32
	Cols   []sparse.Index
	Vals   []T
}

// DenseScratch is one worker's dense column-dimension scratch: a value
// vector and a state byte per column, a touched list for sparse reset,
// and a cursor array for the 2D kernel's per-row write positions.
// Users must leave Vals/State clean (reset every slot recorded in
// Touched) before the owning workspace is released.
type DenseScratch[T sparse.Number] struct {
	Vals    []T
	State   []uint8
	Touched []sparse.Index
	Cursor  []int64
}

// EnsureSize returns d's value and state vectors with length ≥ n,
// growing both (to fresh, zeroed arrays) when the current ones are too
// short — the 2D kernel sizes them by a tile's mask volume, which can
// exceed the column dimension. Growth discards old contents; callers
// rely only on the clean-state invariant, which fresh zeroed arrays
// satisfy by construction.
//
//spgemm:hotpath
func (d *DenseScratch[T]) EnsureSize(n int) ([]T, []uint8) {
	if len(d.Vals) < n {
		//lint:ignore hotpathalloc amortized: grows once per scratch high-water mark
		d.Vals = make([]T, n)
		d.State = make([]uint8, n) //lint:ignore hotpathalloc amortized: grows with Vals above
	}
	return d.Vals[:n], d.State[:n]
}

// EnsureCursor returns d.Cursor grown to length ≥ n.
//
//spgemm:hotpath
func (d *DenseScratch[T]) EnsureCursor(n int) []int64 {
	if cap(d.Cursor) < n {
		//lint:ignore hotpathalloc amortized: grows once per cursor high-water mark
		d.Cursor = make([]int64, n)
	}
	d.Cursor = d.Cursor[:n]
	return d.Cursor
}

// sizeClass is the ceil-log2 bucket of n: the smallest c with 1<<c ≥ n.
func sizeClass(n int) uint8 {
	if n <= 1 {
		return 0
	}
	return uint8(bits.Len(uint(n - 1)))
}

func sizeClass64(n int64) uint8 {
	if n <= 1 {
		return 0
	}
	return uint8(bits.Len64(uint64(n - 1)))
}

// wsType is the pool-key type token for one generic instantiation. The
// nil-pointer TypeOf is allocation-free: the type descriptor already
// exists and pointers need no boxing.
func wsType[T sparse.Number, S semiring.Semiring[T]]() reflect.Type {
	return reflect.TypeOf((*Workspace[T, S])(nil))
}

// maskedKey buckets a masked-kernel checkout. Dimensions an accumulator
// kind ignores are normalized out of the key so e.g. hash workspaces
// pool across column dimensions and dense ones across row capacities.
func maskedKey[T sparse.Number, S semiring.Semiring[T]](
	kind accum.Kind, markerBits, cols int, rowCap int64,
) wsKey {
	cc := sizeClass(cols)
	rc := sizeClass64(rowCap)
	mb := uint8(markerBits)
	switch kind {
	case accum.DenseKind:
		rc = 0 // dense accumulators ignore the row capacity
	case accum.DenseExplicitKind:
		rc, mb = 0, 0 // ... and explicit reset also ignores marker width
	case accum.HashKind:
		cc = 0 // hash accumulators ignore the column dimension
	case accum.HashExplicitKind, accum.SortListKind:
		cc, mb = 0, 0
	}
	return wsKey{
		typ:        wsType[T, S](),
		class:      classMasked,
		kind:       uint8(kind),
		markerBits: mb,
		colsClass:  cc,
		capClass:   rc,
	}
}

// checkout pulls a workspace for key from the pool, or nil on a miss
// (and always nil for a nil engine).
func checkout[T sparse.Number, S semiring.Semiring[T]](e *Engine, key wsKey) *Workspace[T, S] {
	if e == nil {
		return nil
	}
	got := e.get(key)
	if got == nil {
		return nil
	}
	return got.(*Workspace[T, S])
}

// Masked checks out a workspace for a masked-SpGEMM run: one
// accumulator per worker (kind/markerBits, sized for cols columns and
// rowCap row entries) and one output staging buffer per tile. A nil
// engine constructs an unpooled workspace.
//
//spgemm:hotpath
func Masked[T sparse.Number, S semiring.Semiring[T]](
	e *Engine, sr S, kind accum.Kind, markerBits, cols int, rowCap int64,
	workers, tiles int,
) *Workspace[T, S] {
	key := maskedKey[T, S](kind, markerBits, cols, rowCap)
	if e != nil {
		//lint:ignore hotpathalloc allocates only when a fault fires, and the checkout dies with it
		chaos.StepHard(e.cfg.Chaos, chaos.WorkspaceCheckout)
	}
	ws := checkout[T, S](e, key)
	fresh := ws == nil
	if fresh {
		//lint:ignore hotpathalloc miss path: constructs the workspace the pool will recycle
		ws = &Workspace[T, S]{
			key:        key,
			sr:         sr,
			kind:       kind,
			markerBits: markerBits,
			cols:       1 << key.colsClass,
			rowCap:     int64(1) << key.capClass,
		}
	}
	ws.engine = e
	ws.sr = sr
	ws.ensureAccs(workers, !fresh)
	ws.ensureOuts(tiles, !fresh)
	return ws
}

// Dense checks out a workspace carrying one DenseScratch block per
// worker (value + state vectors over cols columns) and one output
// staging buffer per tile — the shape the complement, 2D and sparse-
// vector kernels need. A nil engine constructs an unpooled workspace.
//
//spgemm:hotpath
func Dense[T sparse.Number, S semiring.Semiring[T]](
	e *Engine, sr S, cols, workers, tiles int,
) *Workspace[T, S] {
	key := wsKey{typ: wsType[T, S](), class: classDense, colsClass: sizeClass(cols)}
	if e != nil {
		//lint:ignore hotpathalloc allocates only when a fault fires, and the checkout dies with it
		chaos.StepHard(e.cfg.Chaos, chaos.WorkspaceCheckout)
	}
	ws := checkout[T, S](e, key)
	fresh := ws == nil
	if fresh {
		//lint:ignore hotpathalloc miss path: constructs the workspace the pool will recycle
		ws = &Workspace[T, S]{key: key, sr: sr, cols: 1 << key.colsClass}
	}
	ws.engine = e
	ws.sr = sr
	ws.ensureDense(workers, !fresh)
	ws.ensureOuts(tiles, !fresh)
	return ws
}

// Poison marks the workspace as untrusted for pooled reuse: its run
// panicked, was cancelled mid-tile, or otherwise ended before the
// kernels could restore the clean-state invariant. A poisoned
// workspace is quarantined by Release — dropped and counted, never
// returned to the pool. Safe on nil workspaces; idempotent.
func (ws *Workspace[T, S]) Poison() {
	if ws == nil {
		return
	}
	ws.poisoned = true
}

// Poisoned reports whether the workspace has been marked for
// quarantine. Nil workspaces report false.
func (ws *Workspace[T, S]) Poisoned() bool {
	return ws != nil && ws.poisoned
}

// Release returns the workspace to its engine's pool — unless it has
// been poisoned, in which case it is quarantined: dropped for the
// garbage collector and counted in PoolStats.Quarantines, so a dirty
// workspace can never serve a later checkout. Safe on nil workspaces;
// a no-op for unpooled (nil-engine) checkouts. The caller must not use
// the workspace after Release.
//
//spgemm:hotpath
func (ws *Workspace[T, S]) Release() {
	if ws == nil || ws.engine == nil {
		return
	}
	e := ws.engine
	if ws.poisoned {
		ws.engine = nil
		e.quarantines.Add(1)
		return
	}
	//lint:ignore hotpathalloc allocates only when a fault fires, and the release dies with it
	chaos.StepHard(e.cfg.Chaos, chaos.WorkspaceRelease)
	ws.engine = nil
	e.put(ws.key, ws)
}

// ensureAccs grows the per-worker accumulator set to workers entries.
//
//spgemm:hotpath
func (ws *Workspace[T, S]) ensureAccs(workers int, count bool) {
	if workers <= len(ws.Accs) {
		return
	}
	if count && ws.engine != nil {
		ws.engine.resizes.Add(1)
	}
	//lint:ignore hotpathalloc amortized: grows once per worker-count high-water mark
	accs := make([]accum.Accumulator[T], workers)
	copy(accs, ws.Accs)
	for w := len(ws.Accs); w < workers; w++ {
		accs[w] = accum.New[T](ws.kind, ws.sr, ws.cols, ws.rowCap, ws.markerBits)
	}
	ws.Accs = accs
}

// ensureOuts grows the tile staging set to tiles entries; callers slice
// ws.Outs[:tiles] for the run.
//
//spgemm:hotpath
func (ws *Workspace[T, S]) ensureOuts(tiles int, count bool) {
	if tiles <= len(ws.Outs) {
		return
	}
	if count && ws.engine != nil {
		ws.engine.resizes.Add(1)
	}
	//lint:ignore hotpathalloc amortized: grows once per tile-count high-water mark
	outs := make([]TileBuf[T], tiles)
	copy(outs, ws.Outs)
	ws.Outs = outs
}

// ensureDense grows the per-worker dense scratch set to workers blocks,
// each sized to the workspace's column class.
//
//spgemm:hotpath
func (ws *Workspace[T, S]) ensureDense(workers int, count bool) {
	if workers <= len(ws.Dense) {
		return
	}
	if count && ws.engine != nil {
		ws.engine.resizes.Add(1)
	}
	//lint:ignore hotpathalloc amortized: grows once per worker-count high-water mark
	dense := make([]DenseScratch[T], workers)
	copy(dense, ws.Dense)
	for w := len(ws.Dense); w < workers; w++ {
		//lint:ignore hotpathalloc amortized: dense scratch built once per new worker slot
		dense[w] = DenseScratch[T]{
			Vals:    make([]T, ws.cols),          //lint:ignore hotpathalloc amortized: once per new worker slot
			State:   make([]uint8, ws.cols),      //lint:ignore hotpathalloc amortized: once per new worker slot
			Touched: make([]sparse.Index, 0, 64), //lint:ignore hotpathalloc amortized: once per new worker slot
		}
	}
	ws.Dense = dense
}
