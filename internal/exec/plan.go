package exec

import (
	"maskedspgemm/internal/chaos"
	"maskedspgemm/internal/sched"
	"maskedspgemm/internal/sparse"
	"maskedspgemm/internal/tiling"
)

// Plan is the operand-structure-dependent half of an execution: the
// tile partition and the accumulator row-capacity bound. Building one
// costs O(nnz) (Eq. 2 row-work estimation plus a prefix sum for
// FLOP-balanced tiles); the engine caches plans so iterative callers
// pay that once per operand structure.
//
// Cached plans are shared read-only across concurrent runs — nothing in
// the kernel mutates a Tile — and survive operand mutation harmlessly:
// the plan key pins rows, so a stale hit still partitions exactly
// [0, rows); at worst the FLOP balance is off and accumulators grow on
// demand. For SpGEMM, correctness never depends on plan freshness;
// triangular-solve plans are the exception — their wave order encodes
// dependencies, so their keys content-hash the structure (see
// PlanKey.SolveHash) instead of relying on identity alone.
type Plan struct {
	Tiles  []tiling.Tile
	RowCap int64
	// Solve is the level-schedule payload of a triangular-solve plan;
	// nil for SpGEMM plans.
	Solve *SolvePlan
}

// SolvePlan is the dependency-wave half of a masked triangular-solve
// plan: the substitution order of the in-mask rows, the FLOP-balanced
// tile partition of that order, and the wave coarsening over those
// tiles. Shared read-only across runs like every cached plan.
type SolvePlan struct {
	// Order maps execution slot to row index: the in-mask rows sorted by
	// (dependency level, substitution order). Tiles partition slots, not
	// raw row indices.
	Order []sparse.Index
	// Tiles partitions [0, len(Order)) into row-work-balanced tiles
	// aligned to level boundaries.
	Tiles []tiling.Tile
	// Waves groups consecutive tiles into dependency waves: every slot
	// in a wave depends only on slots in strictly earlier waves.
	Waves []sched.Wave
	// Levels is the raw level-set depth before coarsening; SerialWaves
	// counts waves the coarsener collapsed to a single tile.
	Levels, SerialWaves int
	// Flops is the Eq. 2 total row work of the solve; WaveFlops is the
	// per-wave breakdown (len(Waves) entries), feeding the observability
	// histograms without a rescan.
	Flops     int64
	WaveFlops []int64
	// Trans holds the plan-time transposed operand for transpose solves
	// (a *sparse.CSR[T]; typed any because Plan is not generic). Nil for
	// non-transpose solves.
	Trans any
}

// OperandID fingerprints one operand: pointer identity plus the
// structural dimensions a plan depends on. Two different matrices at a
// recycled address collide only if rows, cols and nnz all match, in
// which case the stale plan is still a valid (if unbalanced) partition.
type OperandID struct {
	ID         any
	Rows, Cols int
	NNZ        int64
}

// IDOf fingerprints a CSR operand. Nil matrices yield the zero ID.
//
//spgemm:hotpath
func IDOf[T sparse.Number](m *sparse.CSR[T]) OperandID {
	if m == nil {
		return OperandID{}
	}
	return OperandID{ID: m, Rows: m.Rows, Cols: m.Cols, NNZ: m.NNZ()}
}

// PlanKey fingerprints everything a plan's content depends on: the
// three operands and the plan-shaping knobs. Worker counts and
// schedule policy deliberately do not appear — the plan pipeline is
// bit-identical across them.
type PlanKey struct {
	M, A, B OperandID
	Tiles   int
	Tiling  tiling.Strategy
	// Vanilla captures whether the row capacity was sized by the flop
	// upper bound (vanilla iteration) or the mask row maximum.
	Vanilla bool
	// Solve discriminates triangular-solve plans from SpGEMM plans in
	// the shared cache: 0 for SpGEMM, otherwise an encoding of the solve
	// kind (lower/upper, transpose) plus one.
	Solve uint8
	// SolveHash fingerprints what a solve plan's correctness depends on:
	// the operand's structure and the mask contents, plus the coarsening
	// knobs. A solve plan's wave order encodes dependencies, so — unlike
	// SpGEMM — a stale hit would be a correctness bug, not a balance
	// wobble; content-hashing closes the recycled-address hole. Zero for
	// SpGEMM plans.
	SolveHash uint64
}

// planEntry is one cached plan with its LRU stamp.
type planEntry struct {
	plan  Plan
	stamp uint64
}

// PlanLookup returns the cached plan for key without building: the
// allocation-free fast path for callers whose build closure would
// otherwise be constructed (and heap-escape) on every call. A hit
// counts toward PlanHits and refreshes the LRU stamp; a miss counts
// nothing — the follow-up Plan call does.
//
//spgemm:hotpath
func (e *Engine) PlanLookup(key PlanKey) (Plan, bool) {
	if e == nil || e.maxPlans() == 0 {
		return Plan{}, false
	}
	e.mu.Lock()
	ent, ok := e.plans[key]
	var plan Plan
	if ok {
		e.planClock++
		ent.stamp = e.planClock
		plan = ent.plan
	}
	e.mu.Unlock()
	if !ok {
		return Plan{}, false
	}
	e.planHits.Add(1)
	return plan, true
}

// Plan returns the cached plan for key, or builds, caches and returns
// it. A nil engine (or a disabled cache) always builds. Build errors
// are returned uncached. Safe for concurrent use; two racing misses on
// one key both build and the first to store wins.
//
//spgemm:hotpath
func (e *Engine) Plan(key PlanKey, build func() (Plan, error)) (Plan, error) {
	if e == nil || e.maxPlans() == 0 {
		return build()
	}
	e.mu.Lock()
	if ent, ok := e.plans[key]; ok {
		e.planClock++
		ent.stamp = e.planClock
		plan := ent.plan
		e.mu.Unlock()
		e.planHits.Add(1)
		return plan, nil
	}
	e.mu.Unlock()
	e.planMisses.Add(1)
	p, err := build()
	if err != nil {
		return Plan{}, err
	}
	// Plan-store injection: an error or cancel fault skips caching —
	// the freshly built plan is still returned, degrading to per-call
	// planning rather than failing the run. Panic faults propagate.
	if k := chaos.Step(e.cfg.Chaos, chaos.PlanStore); k != chaos.KindNone {
		return p, nil
	}
	e.mu.Lock()
	if _, ok := e.plans[key]; !ok {
		e.planClock++
		//lint:ignore hotpathalloc miss path caches the freshly built plan
		e.plans[key] = &planEntry{plan: p, stamp: e.planClock}
		for len(e.plans) > e.maxPlans() {
			e.evictPlanLocked()
		}
	}
	e.mu.Unlock()
	return p, nil
}

// evictPlanLocked drops the least recently used plan. Caller holds e.mu.
func (e *Engine) evictPlanLocked() {
	var victim PlanKey
	best := ^uint64(0)
	found := false
	for k, ent := range e.plans {
		if ent.stamp < best {
			best, victim, found = ent.stamp, k, true
		}
	}
	if found {
		delete(e.plans, victim)
	}
}
