package exec

import (
	"errors"
	"strings"
	"testing"

	"maskedspgemm/internal/accum"
	"maskedspgemm/internal/chaos"
	"maskedspgemm/internal/sparse"
)

// TestQuarantineDropsPoisoned checks the quarantine contract: a
// poisoned workspace never re-enters the pool, the quarantine counter
// moves, and the pool stays self-consistent.
func TestQuarantineDropsPoisoned(t *testing.T) {
	e := New(Config{})
	ws := Masked[float64, sr](e, sr{}, accum.HashKind, 32, 256, 32, 2, 4)
	if e.Idle() != 0 {
		t.Fatalf("idle = %d before release, want 0", e.Idle())
	}
	ws.Poison()
	if !ws.Poisoned() {
		t.Fatal("Poisoned() false after Poison()")
	}
	ws.Release()
	if e.Idle() != 0 {
		t.Fatalf("idle = %d after poisoned release, want 0 (workspace must be dropped)", e.Idle())
	}
	if q := e.Stats().Quarantines; q != 1 {
		t.Fatalf("quarantines = %d, want 1", q)
	}
	if err := e.SelfCheck(); err != nil {
		t.Fatalf("SelfCheck after quarantine: %v", err)
	}
	// The next checkout must be a miss: the poisoned instance is gone.
	prior := e.Stats()
	ws2 := Masked[float64, sr](e, sr{}, accum.HashKind, 32, 256, 32, 2, 4)
	if d := e.Stats().Sub(prior); d.Misses != 1 || d.Hits != 0 {
		t.Fatalf("post-quarantine checkout: %+v, want a pure miss", d)
	}
	ws2.Release()
	if err := e.SelfCheck(); err != nil {
		t.Fatalf("SelfCheck after clean release: %v", err)
	}
}

// TestSelfCheckAcceptsCleanPool cycles clean workspaces of both classes
// through the pool and requires SelfCheck to pass at every step.
func TestSelfCheckAcceptsCleanPool(t *testing.T) {
	e := New(Config{})
	mw := Masked[float64, sr](e, sr{}, accum.DenseKind, 32, 100, 5, 2, 4)
	dw := Dense[float64, sr](e, sr{}, 64, 2, 4)
	mw.Release()
	dw.Release()
	if e.Idle() != 2 {
		t.Fatalf("idle = %d, want 2", e.Idle())
	}
	if err := e.SelfCheck(); err != nil {
		t.Fatalf("SelfCheck on clean pool: %v", err)
	}
	if err := (*Engine)(nil).SelfCheck(); err != nil {
		t.Fatalf("nil engine SelfCheck: %v", err)
	}
}

// TestSelfCheckDetectsDirtyScratch releases a workspace whose dense
// scratch still holds marks — the corruption quarantine exists to keep
// out of the pool — and requires SelfCheck to name it.
func TestSelfCheckDetectsDirtyScratch(t *testing.T) {
	e := New(Config{})
	ws := Dense[float64, sr](e, sr{}, 64, 2, 4)
	ws.Dense[0].State[3] = 1
	ws.Dense[0].Touched = append(ws.Dense[0].Touched, sparse.Index(3))
	ws.Release() // deliberately unpoisoned: simulates an escaped corruption
	err := e.SelfCheck()
	if err == nil {
		t.Fatal("SelfCheck accepted a pool holding dirty scratch")
	}
	if !strings.Contains(err.Error(), "touched") {
		t.Fatalf("SelfCheck error does not name the dirty scratch: %v", err)
	}
}

// TestSelfCheckDetectsGaugeDrift forces the idle gauge out of sync with
// the enumerable population and requires SelfCheck to report it.
func TestSelfCheckDetectsGaugeDrift(t *testing.T) {
	e := New(Config{})
	Masked[float64, sr](e, sr{}, accum.HashKind, 32, 64, 8, 1, 1).Release()
	e.mu.Lock()
	e.idle++
	e.mu.Unlock()
	err := e.SelfCheck()
	if err == nil {
		t.Fatal("SelfCheck accepted a drifted idle gauge")
	}
	if !strings.Contains(err.Error(), "idle gauge") {
		t.Fatalf("SelfCheck error does not name the gauge: %v", err)
	}
}

// TestCheckoutReleaseChaosSeams arms each engine seam in turn and
// checks the fault surfaces as a panic carrying the injected-fault
// chain (the seams have no error channel, so panics are the contract).
func TestCheckoutReleaseChaosSeams(t *testing.T) {
	trip := func(p chaos.Point, f func(e *Engine)) {
		t.Helper()
		sd := chaos.NewSeeded(411)
		sd.Arm(p, chaos.KindError, 1, 0)
		e := New(Config{Chaos: sd})
		defer func() {
			r := recover()
			if r == nil {
				t.Fatalf("%v: no panic", p)
			}
			err, ok := r.(error)
			if !ok || !errors.Is(err, chaos.ErrInjected) {
				t.Fatalf("%v: panic value %v lacks the injected-fault chain", p, r)
			}
			var inj *chaos.Injected
			if !errors.As(err, &inj) || inj.Point != p {
				t.Fatalf("%v: panic payload %v does not name the seam", p, r)
			}
		}()
		f(e)
	}
	trip(chaos.WorkspaceCheckout, func(e *Engine) {
		Masked[float64, sr](e, sr{}, accum.HashKind, 32, 64, 8, 1, 1)
	})
	trip(chaos.WorkspaceRelease, func(e *Engine) {
		// Build the workspace before arming fires: checkout crosses its
		// own seam first, so arm release on crossing 1 and checkout's
		// trigger stays quiet (different point).
		Masked[float64, sr](e, sr{}, accum.HashKind, 32, 64, 8, 1, 1).Release()
	})
}
