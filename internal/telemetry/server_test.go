package telemetry

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"maskedspgemm/internal/obs"
)

// TestServerEndpoints serves a populated registry and exercises every
// endpoint plus the SelfCheck contract the CLI smoke gate relies on.
func TestServerEndpoints(t *testing.T) {
	clk := &testClock{t: 1}
	tel := testTelemetry(t, clk)
	rec := obs.NewRecorder()
	tel.AttachRecorder(rec)
	rec.AddRun()
	tel.RecordRun(2 * time.Millisecond)
	tel.Event(1, obs.EventRunStart, obs.PhaseNone, 0, 0)

	srv, err := tel.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if srv.Addr() == "" || !strings.HasPrefix(srv.URL(), "http://127.0.0.1:") {
		t.Fatalf("addr %q url %q", srv.Addr(), srv.URL())
	}

	if err := SelfCheck(srv.URL()); err != nil {
		t.Fatalf("SelfCheck on a healthy server: %v", err)
	}

	get := func(path string) (string, string) {
		t.Helper()
		resp, err := http.Get(srv.URL() + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		return string(body), resp.Header.Get("Content-Type")
	}

	body, ctype := get("/metrics")
	if !strings.HasPrefix(ctype, "text/plain; version=0.0.4") {
		t.Fatalf("/metrics content type %q", ctype)
	}
	if !strings.Contains(body, "spgemm_runs_total 1") {
		t.Fatalf("/metrics missing runs counter:\n%s", body)
	}

	body, ctype = get("/stats")
	if ctype != "application/json" {
		t.Fatalf("/stats content type %q", ctype)
	}
	if err := obs.ValidateStatsJSON([]byte(body)); err != nil {
		t.Fatalf("/stats: %v", err)
	}

	body, _ = get("/flight")
	if err := ValidateFlightJSON([]byte(body)); err != nil {
		t.Fatalf("/flight: %v", err)
	}
	if !strings.Contains(body, `"reason": "forced"`) {
		t.Fatalf("/flight reason not forced:\n%s", body)
	}
	if tel.Dumps() != 0 {
		t.Fatalf("/flight wrote a disk dump (%d), should only render", tel.Dumps())
	}

	if body, _ = get("/healthz"); strings.TrimSpace(body) != "ok" {
		t.Fatalf("/healthz body %q", body)
	}
	if body, _ = get("/debug/vars"); !strings.Contains(body, "memstats") {
		t.Fatalf("/debug/vars missing expvar memstats")
	}
	if body, _ = get("/debug/pprof/cmdline"); body == "" {
		t.Fatalf("/debug/pprof/cmdline empty")
	}
}

// TestSelfCheckRejectsColdServer pins the gate's teeth: a registry with
// no completed runs must fail the self-check, so a smoke job that timed
// nothing cannot pass vacuously.
func TestSelfCheckRejectsColdServer(t *testing.T) {
	clk := &testClock{t: 1}
	tel := testTelemetry(t, clk)
	srv, err := tel.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	err = SelfCheck(srv.URL())
	if err == nil || !strings.Contains(err.Error(), "no completed runs") {
		t.Fatalf("SelfCheck on a cold server = %v, want no-completed-runs failure", err)
	}
}

// TestSelfCheckRejectsBrokenMetrics pins that a served document failing
// the exposition parse or missing series fails the check.
func TestSelfCheckRejectsBrokenMetrics(t *testing.T) {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "spgemm_runs_total 5\n") // parses, but series missing
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()
	err := SelfCheck(ts.URL)
	if err == nil || !strings.Contains(err.Error(), "missing required series") {
		t.Fatalf("SelfCheck = %v, want missing-series failure", err)
	}
}

// TestURLRewritesWildcard pins that a wildcard bind is rewritten to a
// dialable loopback URL.
func TestURLRewritesWildcard(t *testing.T) {
	s := &Server{addr: "0.0.0.0:9999"}
	if got := s.URL(); got != "http://127.0.0.1:9999" {
		t.Fatalf("URL() = %q", got)
	}
	s = &Server{addr: "[::]:9999"}
	if got := s.URL(); got != "http://127.0.0.1:9999" {
		t.Fatalf("URL() = %q", got)
	}
	var nilSrv *Server
	if nilSrv.URL() != "" || nilSrv.Addr() != "" || nilSrv.Close() != nil {
		t.Fatal("nil server accessors should be no-ops")
	}
}
