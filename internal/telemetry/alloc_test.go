package telemetry

import (
	"testing"
	"time"

	"maskedspgemm/internal/obs"
)

// These pins back the hotpathalloc annotations with measurements: the
// telemetry record path — from a recorder's sink forwarding down to
// histogram buckets and the flight-recorder ring — must not allocate in
// steady state. The CI race/test targets run them, so a regression fails
// the build, not just the linter.

func mustZeroAllocs(t *testing.T, name string, f func()) {
	t.Helper()
	if n := testing.AllocsPerRun(100, f); n != 0 {
		t.Errorf("%s allocates %.1f times per op, want exactly 0", name, n)
	}
}

func TestRecordPathZeroAlloc(t *testing.T) {
	clk := &testClock{t: 1}
	tel := testTelemetry(t, clk)
	h := NewHist()
	w := NewWindowed(int64(time.Hour), 2, clk.now)
	f := NewFlightRecorder(64, clk.now)
	v := int64(0)

	mustZeroAllocs(t, "Hist.Record", func() { h.Record(v); v += 997 })
	mustZeroAllocs(t, "Windowed.Record", func() { w.Record(v); v += 997 })
	mustZeroAllocs(t, "FlightRecorder.Append", func() {
		f.Append(1, obs.EventPhase, obs.PhaseExecKernel, v, 0)
	})
	mustZeroAllocs(t, "Telemetry.RecordPhase", func() {
		tel.RecordPhase(obs.PhaseExecKernel, time.Duration(v))
	})
	mustZeroAllocs(t, "Telemetry.RecordRun", func() {
		tel.RecordRun(time.Duration(v))
	})
	mustZeroAllocs(t, "Telemetry.Event", func() {
		tel.Event(1, obs.EventTileBatch, obs.PhaseExecKernel, v, 0)
	})
}

// TestSinkForwardingZeroAlloc pins the obs-side forwarders: with a live
// sink attached, a recorder's event emission allocates nothing — the
// kernel's per-tile and per-counter-fold costs must not grow when an
// operator turns telemetry on.
func TestSinkForwardingZeroAlloc(t *testing.T) {
	clk := &testClock{t: 1}
	tel := testTelemetry(t, clk)
	rec := obs.NewRecorder()
	tel.AttachRecorder(rec)
	scope := rec.StartRun()
	defer scope.End()

	mustZeroAllocs(t, "Recorder.Event (sink attached)", func() {
		rec.Event(obs.EventTileBatch, obs.PhaseExecKernel, 1, 2)
	})
	mustZeroAllocs(t, "RunScope.Event (sink attached)", func() {
		scope.Event(obs.EventTileBatch, obs.PhaseExecKernel, 1, 2)
	})

	var detached *obs.Recorder // nil recorder: the disabled path
	mustZeroAllocs(t, "Recorder.Event (nil recorder)", func() {
		detached.Event(obs.EventTileBatch, obs.PhaseExecKernel, 1, 2)
	})
}
