package telemetry

import (
	"math"
	"reflect"
	"sort"
	"sync"
	"testing"
)

// TestBucketGridContiguous pins the log-linear grid: every reachable
// bucket's [low, high] range maps back to itself, ranges abut with no
// gaps or overlaps, and the extreme values land inside the grid.
func TestBucketGridContiguous(t *testing.T) {
	maxIdx := bucketIndex(math.MaxInt64)
	if maxIdx >= histBuckets {
		t.Fatalf("bucketIndex(MaxInt64) = %d, beyond histBuckets %d", maxIdx, histBuckets)
	}
	prevHigh := int64(-1)
	for idx := 0; idx <= maxIdx; idx++ {
		lo, hi := bucketLow(idx), bucketHigh(idx)
		if lo != prevHigh+1 {
			t.Fatalf("bucket %d: low %d, want %d (contiguous with previous high)", idx, lo, prevHigh+1)
		}
		if hi < lo {
			t.Fatalf("bucket %d: high %d < low %d", idx, hi, lo)
		}
		if got := bucketIndex(lo); got != idx {
			t.Fatalf("bucketIndex(low=%d) = %d, want %d", lo, got, idx)
		}
		if got := bucketIndex(hi); got != idx {
			t.Fatalf("bucketIndex(high=%d) = %d, want %d", hi, got, idx)
		}
		prevHigh = hi
	}
	if prevHigh != math.MaxInt64 {
		t.Fatalf("grid tops out at %d, want MaxInt64", prevHigh)
	}
	if got := bucketIndex(-5); got != 0 {
		t.Fatalf("bucketIndex(-5) = %d, want 0 (clamp)", got)
	}
}

// TestBucketRelativeWidth pins the accuracy contract: above the exact
// range every bucket's width is at most 2^-histSubBits of its low bound.
func TestBucketRelativeWidth(t *testing.T) {
	maxIdx := bucketIndex(math.MaxInt64)
	for idx := 2 * histSubBuckets; idx <= maxIdx; idx++ {
		lo, hi := bucketLow(idx), bucketHigh(idx)
		width := float64(hi-lo) + 1
		if rel := width / float64(lo); rel > 1.0/histSubBuckets+1e-9 {
			t.Fatalf("bucket %d [%d,%d]: relative width %.4f exceeds %.4f",
				idx, lo, hi, rel, 1.0/histSubBuckets)
		}
	}
}

// exactQuantile mirrors HistSnapshot.Quantile's rank definition (1-based
// ceil rank) on the raw sorted values.
func exactQuantile(sorted []int64, q float64) int64 {
	rank := int(math.Ceil(q * float64(len(sorted))))
	if rank < 1 {
		rank = 1
	}
	return sorted[rank-1]
}

// TestQuantileErrorBounds records deterministic streams spanning several
// orders of magnitude and requires every estimated quantile to be within
// the grid's relative error of the exact value.
func TestQuantileErrorBounds(t *testing.T) {
	streams := map[string]func() []int64{
		"uniform-small": func() []int64 { // exact range: values < 64
			var v []int64
			for i := int64(0); i < 1000; i++ {
				v = append(v, i%64)
			}
			return v
		},
		"linear-wide": func() []int64 {
			var v []int64
			for i := int64(1); i <= 50000; i++ {
				v = append(v, i*37)
			}
			return v
		},
		"log-spread": func() []int64 { // ns-scale latencies, 1µs..1s
			var v []int64
			x := int64(1000)
			for i := 0; i < 20000; i++ {
				v = append(v, x)
				x += x/100 + 1
				if x > 1e9 {
					x = 1000
				}
			}
			return v
		},
	}
	quantiles := []float64{0, 0.1, 0.25, 0.5, 0.9, 0.99, 0.999, 1}
	for name, gen := range streams {
		values := gen()
		h := NewHist()
		for _, v := range values {
			h.Record(v)
		}
		sorted := append([]int64(nil), values...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		snap := h.Snapshot()
		if snap.Count != int64(len(values)) {
			t.Fatalf("%s: count %d, want %d", name, snap.Count, len(values))
		}
		for _, q := range quantiles {
			got := snap.Quantile(q)
			want := exactQuantile(sorted, q)
			// Midpoint reconstruction errs by at most half a bucket width
			// (1/histSubBuckets/2 relative) above the exact range, and by
			// nothing below it; +1 absorbs integer midpoint truncation.
			tol := int64(float64(want)/(2*histSubBuckets)) + 1
			if want < 2*histSubBuckets {
				tol = 0
			}
			if got < want-tol || got > want+tol {
				t.Errorf("%s: q=%.3f: got %d, want %d ± %d", name, q, got, want, tol)
			}
		}
	}
}

// TestQuantileEmpty pins the zero-snapshot behavior.
func TestQuantileEmpty(t *testing.T) {
	var s HistSnapshot
	if got := s.Quantile(0.5); got != 0 {
		t.Fatalf("empty quantile = %d, want 0", got)
	}
	if got := s.Mean(); got != 0 {
		t.Fatalf("empty mean = %v, want 0", got)
	}
}

func histOf(values ...int64) HistSnapshot {
	h := NewHist()
	for _, v := range values {
		h.Record(v)
	}
	return h.Snapshot()
}

// TestMergeAssociativeCommutative pins that snapshot merging is
// associative and commutative and treats the zero snapshot as identity —
// the properties per-window and per-shard aggregation rely on.
func TestMergeAssociativeCommutative(t *testing.T) {
	a := histOf(1, 5, 900, 1e6)
	b := histOf(63, 64, 65, 1e9, 1e9)
	c := histOf(0, 2, 4096)

	left := a.Merge(b).Merge(c)
	right := a.Merge(b.Merge(c))
	if !reflect.DeepEqual(left, right) {
		t.Fatalf("merge not associative: (a+b)+c != a+(b+c)")
	}
	if !reflect.DeepEqual(a.Merge(b), b.Merge(a)) {
		t.Fatalf("merge not commutative")
	}
	var zero HistSnapshot
	if !reflect.DeepEqual(a.Merge(zero), a) || !reflect.DeepEqual(zero.Merge(a), a) {
		t.Fatalf("zero snapshot is not a merge identity")
	}
	if left.Count != a.Count+b.Count+c.Count {
		t.Fatalf("merged count %d, want %d", left.Count, a.Count+b.Count+c.Count)
	}
	if left.Min != 0 || left.Max != int64(1e9) {
		t.Fatalf("merged min/max = %d/%d, want 0/1e9", left.Min, left.Max)
	}
}

// TestConcurrentRecordBitStable records the same multiset of values from
// many goroutines and serially, and requires bit-identical snapshots —
// the histogram's counts must be exact once writers quiesce, regardless
// of interleaving. Run under -race this also proves the record path is
// data-race-free.
func TestConcurrentRecordBitStable(t *testing.T) {
	const goroutines = 8
	const perG = 5000
	value := func(g, i int) int64 { return int64((g*perG+i)*131) % 1e7 }

	concurrent := NewHist()
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				concurrent.Record(value(g, i))
			}
		}(g)
	}
	wg.Wait()

	serial := NewHist()
	for g := 0; g < goroutines; g++ {
		for i := 0; i < perG; i++ {
			serial.Record(value(g, i))
		}
	}
	if !reflect.DeepEqual(concurrent.Snapshot(), serial.Snapshot()) {
		t.Fatalf("concurrent snapshot differs from serial snapshot of the same multiset")
	}
}

// TestHistReset pins that Reset returns the histogram to its empty
// state.
func TestHistReset(t *testing.T) {
	h := NewHist()
	h.Record(42)
	h.Record(1e6)
	h.Reset()
	if snap := h.Snapshot(); snap.Count != 0 || snap.buckets != nil {
		t.Fatalf("after Reset: count %d, want empty snapshot", snap.Count)
	}
	h.Record(7)
	snap := h.Snapshot()
	if snap.Count != 1 || snap.Min != 7 || snap.Max != 7 {
		t.Fatalf("after Reset+Record: %+v, want single observation of 7", snap)
	}
}
