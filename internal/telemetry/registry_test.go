package telemetry

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"maskedspgemm/internal/chaos"
	"maskedspgemm/internal/obs"
	"maskedspgemm/internal/sched"
)

func testTelemetry(t *testing.T, clk *testClock) *Telemetry {
	t.Helper()
	return New(Config{
		Window:     time.Second,
		Slots:      2,
		FlightPath: filepath.Join(t.TempDir(), "flight.json"),
		Now:        clk.now,
	})
}

// TestSinkWiring drives a real recorder run with the registry attached
// and checks the push path end to end: phase spans land in the phase
// histograms, the completed run lands in the run histogram, and the
// flight recorder holds the structured event trail.
func TestSinkWiring(t *testing.T) {
	clk := &testClock{t: 1}
	tel := testTelemetry(t, clk)
	rec := obs.NewRecorder()
	tel.AttachRecorder(rec)

	scope := rec.StartRun()
	end := scope.Span(obs.PhasePlanRowWork)
	end()
	end = scope.Span(obs.PhaseExecKernel)
	end()
	scope.Event(obs.EventTileBatch, obs.PhaseExecKernel, 3, 32)
	scope.MarkComplete()
	scope.End()

	if got := tel.PhaseWindow(obs.PhasePlanRowWork).Count; got != 1 {
		t.Fatalf("plan.row_work window count %d, want 1", got)
	}
	if got := tel.PhaseWindow(obs.PhaseExecKernel).Count; got != 1 {
		t.Fatalf("exec.kernel window count %d, want 1", got)
	}
	if got := tel.RunWindow().Count; got != 1 {
		t.Fatalf("run window count %d, want 1", got)
	}

	d := tel.Flight().BuildDump("forced", "", nil, "")
	var kinds []string
	for _, e := range d.Events {
		kinds = append(kinds, e.Kind)
	}
	trail := strings.Join(kinds, ",")
	for _, want := range []string{"run_start", "phase", "tile_batch", "run_end"} {
		if !strings.Contains(trail, want) {
			t.Fatalf("flight trail %q missing %q", trail, want)
		}
	}
	// The run's events all carry its multiply sequence id.
	for _, e := range d.Events {
		if e.RunSeq == 0 {
			t.Fatalf("event %s has no run sequence", e.Kind)
		}
	}
}

// TestSinkAbandonedRunNotRecorded pins that a run ended without
// MarkComplete (an error path) records no run latency — failed runs must
// not pollute the latency distribution.
func TestSinkAbandonedRunNotRecorded(t *testing.T) {
	clk := &testClock{t: 1}
	tel := testTelemetry(t, clk)
	rec := obs.NewRecorder()
	tel.AttachRecorder(rec)
	scope := rec.StartRun()
	scope.End() // no MarkComplete
	if got := tel.RunWindow().Count; got != 0 {
		t.Fatalf("abandoned run recorded a latency (count %d)", got)
	}
}

// TestRetryAndRecalEvents pins the counter-fold event emissions: retry
// and snapback activity lands in the flight recorder as it happens.
func TestRetryAndRecalEvents(t *testing.T) {
	clk := &testClock{t: 1}
	tel := testTelemetry(t, clk)
	rec := obs.NewRecorder()
	tel.AttachRecorder(rec)

	rec.AddRetry(obs.RetryCounters{Attempts: 1, Retries: 1, Degradations: 1, Stalls: 1})
	rec.AddRetry(obs.RetryCounters{Failures: 1})
	rec.AddRecal(obs.RecalCounters{Updates: 1, Snapbacks: 1, KappaLast: 2.5})

	d := tel.Flight().BuildDump("forced", "", nil, "")
	got := map[string]int{}
	for _, e := range d.Events {
		got[e.Kind]++
	}
	for _, want := range []string{"retry", "stall", "failure", "snapback"} {
		if got[want] == 0 {
			t.Fatalf("no %q event in flight recorder (have %v)", want, got)
		}
	}
}

// TestAggregateStats pins that /metrics counters sum over every attached
// recorder — the bench tool attaches a fresh one per graph and none of
// their runs may vanish from the totals.
func TestAggregateStats(t *testing.T) {
	clk := &testClock{t: 1}
	tel := testTelemetry(t, clk)
	r1, r2 := obs.NewRecorder(), obs.NewRecorder()
	tel.AttachRecorder(r1)
	tel.AttachRecorder(r2)
	r1.AddRun()
	r1.AddRun()
	r2.AddRun()
	r1.AddRetry(obs.RetryCounters{Attempts: 2, Retries: 1})
	r2.AddRetry(obs.RetryCounters{Attempts: 3})
	r1.AddRecal(obs.RecalCounters{Updates: 1, KappaLast: 1.5})
	r2.AddRecal(obs.RecalCounters{Updates: 2, KappaLast: 2.5})

	s := tel.aggregateStats()
	if s.Runs != 3 {
		t.Fatalf("aggregate runs %d, want 3", s.Runs)
	}
	if s.Retry.Attempts != 5 || s.Retry.Retries != 1 {
		t.Fatalf("aggregate retry %+v, want attempts=5 retries=1", s.Retry)
	}
	if s.Recal.Updates != 3 || s.Recal.KappaLast != 2.5 {
		t.Fatalf("aggregate recal %+v, want updates=3 kappa=2.5 (last wins)", s.Recal)
	}
	// Re-attaching is idempotent: no double counting.
	tel.AttachRecorder(r1)
	if s2 := tel.aggregateStats(); s2.Runs != 3 {
		t.Fatalf("re-attach changed aggregate runs to %d", s2.Runs)
	}
}

// TestClassifyFailure pins the dump-reason taxonomy.
func TestClassifyFailure(t *testing.T) {
	stall := fmt.Errorf("attempt 3: %w", &sched.StallError{Timeout: time.Millisecond, Tiles: 8})
	panicked := fmt.Errorf("contained: %w", &sched.PanicError{Value: "boom", Worker: 2})
	cases := []struct {
		err  error
		want string
	}{
		{nil, "forced"},
		{stall, "stall"},
		{panicked, "panic"},
		{errors.New("some transient fault"), "retry-exhausted"},
	}
	for _, c := range cases {
		if got := classifyFailure(c.err); got != c.want {
			t.Fatalf("classifyFailure(%v) = %q, want %q", c.err, got, c.want)
		}
	}
}

// TestDumpFailureStall writes a stall dump to disk and checks the
// document carries the watchdog's stacks and the preceding event window,
// and validates against the flightrec/v1 schema.
func TestDumpFailureStall(t *testing.T) {
	clk := &testClock{t: 1}
	tel := testTelemetry(t, clk)
	tel.Event(7, obs.EventRunStart, obs.PhaseNone, 0, 0)
	tel.Event(7, obs.EventTileBatch, obs.PhaseExecKernel, 5, 40)

	se := &sched.StallError{
		Timeout: 25 * time.Millisecond,
		Done:    40, Tiles: 64,
		Stacks: []byte("goroutine 12 [sleep]:\nworker stuck here"),
	}
	path, err := tel.DumpFailure("", fmt.Errorf("multiply failed: %w", se))
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateFlightJSON(data); err != nil {
		t.Fatalf("dump on disk fails validation: %v", err)
	}
	text := string(data)
	for _, want := range []string{
		`"reason": "stall"`, "worker stuck here", `"done": 40`, `"tiles": 64`,
		`"kind": "run_start"`, `"kind": "tile_batch"`,
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("dump missing %q:\n%s", want, text)
		}
	}
	if tel.Dumps() != 1 || tel.LastDumpPath() != path {
		t.Fatalf("dump bookkeeping: dumps=%d last=%q, want 1/%q", tel.Dumps(), tel.LastDumpPath(), path)
	}
}

// TestDumpFailurePanic pins the panic-dump variant: the contained
// panic's stack rides along under panic_stack.
func TestDumpFailurePanic(t *testing.T) {
	clk := &testClock{t: 1}
	tel := testTelemetry(t, clk)
	pe := &sched.PanicError{Value: "boom", Stack: []byte("panic stack here"), Worker: 1}
	path, err := tel.DumpFailure("", pe)
	if err != nil {
		t.Fatal(err)
	}
	data, _ := os.ReadFile(path)
	if !strings.Contains(string(data), `"reason": "panic"`) ||
		!strings.Contains(string(data), "panic stack here") {
		t.Fatalf("panic dump missing reason or stack:\n%s", data)
	}
}

// TestWrapInjector pins the chaos tap: armed decisions are recorded as
// chaos events before they execute; quiet decisions are not.
func TestWrapInjector(t *testing.T) {
	clk := &testClock{t: 1}
	tel := testTelemetry(t, clk)
	armed := false
	inj := tel.WrapInjector(chaos.Func(func(p chaos.Point) chaos.Fault {
		if armed && p == chaos.TileClaim {
			return chaos.Fault{Kind: chaos.KindDelay, Delay: time.Millisecond}
		}
		return chaos.Fault{}
	}))

	inj.Decide(chaos.TileClaim) // quiet
	before := tel.Flight().Seq()
	armed = true
	f := inj.Decide(chaos.TileClaim) // fires
	if f.Kind != chaos.KindDelay {
		t.Fatalf("tap altered the decision: %v", f.Kind)
	}
	if tel.Flight().Seq() != before+1 {
		t.Fatalf("armed decision not recorded (seq %d -> %d)", before, tel.Flight().Seq())
	}
	d := tel.Flight().BuildDump("forced", "", nil, "")
	last := d.Events[len(d.Events)-1]
	if last.Kind != "chaos" || last.A != int64(chaos.TileClaim) || last.B != int64(chaos.KindDelay) {
		t.Fatalf("chaos event payload %+v, want point/kind identifiers", last)
	}

	if got := tel.WrapInjector(nil); got != nil {
		t.Fatalf("nil injector should pass through nil")
	}
	var nilTel *Telemetry
	raw := chaos.Func(func(chaos.Point) chaos.Fault { return chaos.Fault{} })
	if got := nilTel.WrapInjector(raw); got == nil {
		t.Fatalf("nil registry should pass the injector through unchanged")
	}
}

// TestNilRegistrySafe pins that every registry entry point is nil-safe —
// telemetry off must never be a crash.
func TestNilRegistrySafe(t *testing.T) {
	var tel *Telemetry
	tel.RecordPhase(obs.PhaseExecKernel, time.Millisecond)
	tel.RecordRun(time.Millisecond)
	tel.Event(0, obs.EventPhase, obs.PhaseExecKernel, 0, 0)
	tel.AttachRecorder(obs.NewRecorder())
	tel.AttachEngine(nil)
	if tel.Recorder() != nil || tel.Flight() != nil || tel.Dumps() != 0 || tel.LastDumpPath() != "" {
		t.Fatal("nil registry accessors should return zero values")
	}
	if s := tel.RunWindow(); s.Count != 0 {
		t.Fatal("nil registry window should be empty")
	}
	if path, err := tel.DumpFailure("forced", nil); path != "" || err != nil {
		t.Fatalf("nil registry DumpFailure = (%q, %v), want no-op", path, err)
	}
}
