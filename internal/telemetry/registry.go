package telemetry

import (
	"errors"
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"maskedspgemm/internal/chaos"
	"maskedspgemm/internal/exec"
	"maskedspgemm/internal/obs"
	"maskedspgemm/internal/sched"
)

// Config sizes a Telemetry registry.
type Config struct {
	// Window is the rolling-histogram slot width (default 60s).
	Window time.Duration
	// Slots is how many retired windows each series retains (default 6,
	// so quantiles cover roughly the last 6–7 windows).
	Slots int
	// FlightEvents is the flight-recorder ring capacity (default 4096).
	FlightEvents int
	// FlightPath is where failure dumps are written (default
	// "spgemm_flight.json" in the working directory).
	FlightPath string
	// Now supplies wall time in unix nanoseconds; nil means the real
	// clock. Injectable for tests.
	Now func() int64
}

// Telemetry is the live-observability registry: one rolling latency
// series per pipeline phase plus one for whole runs, a flight recorder,
// and references to the recorders and engines it reports for. It
// implements obs.Sink, so attaching it to a Recorder (AttachRecorder)
// routes every span close and structured event here with zero steady-
// state allocations.
type Telemetry struct {
	cfg Config
	now func() int64

	phases [obs.PhaseCount]*Windowed
	runs   *Windowed
	flight *FlightRecorder

	// rec is the registry's own recorder: the fallback the facade routes
	// runs through when the caller attached no StatsRecorder, so live
	// metrics work with zero configuration beyond the telemetry itself.
	rec *obs.Recorder

	mu        sync.Mutex
	recorders []*obs.Recorder
	engines   []*exec.Engine

	dumps    atomic.Int64
	lastDump atomic.Pointer[string]
}

// New returns a registry with the given configuration.
func New(cfg Config) *Telemetry {
	if cfg.Window <= 0 {
		cfg.Window = 60 * time.Second
	}
	if cfg.Slots <= 0 {
		cfg.Slots = 6
	}
	if cfg.FlightEvents <= 0 {
		cfg.FlightEvents = 4096
	}
	if cfg.FlightPath == "" {
		cfg.FlightPath = "spgemm_flight.json"
	}
	now := cfg.Now
	if now == nil {
		now = func() int64 { return time.Now().UnixNano() }
	}
	t := &Telemetry{cfg: cfg, now: now}
	for p := range t.phases {
		t.phases[p] = NewWindowed(int64(cfg.Window), cfg.Slots, now)
	}
	t.runs = NewWindowed(int64(cfg.Window), cfg.Slots, now)
	t.flight = NewFlightRecorder(cfg.FlightEvents, now)
	t.rec = obs.NewRecorder()
	t.AttachRecorder(t.rec)
	return t
}

// Recorder returns the registry's own recorder — the zero-config
// fallback runs record into when no StatsRecorder is attached.
func (t *Telemetry) Recorder() *obs.Recorder {
	if t == nil {
		return nil
	}
	return t.rec
}

// AttachRecorder registers a recorder with the registry and installs
// the registry as its live sink. Idempotent per recorder; nil-safe on
// both sides. The most recently attached recorder backs /stats.
func (t *Telemetry) AttachRecorder(r *obs.Recorder) {
	if t == nil || r == nil {
		return
	}
	r.SetSink(t)
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, have := range t.recorders {
		if have == r {
			return
		}
	}
	// Bound the list: a caller attaching per-run recorders in a loop
	// should not grow the registry without limit.
	if len(t.recorders) >= 64 {
		copy(t.recorders, t.recorders[1:])
		t.recorders = t.recorders[:len(t.recorders)-1]
	}
	t.recorders = append(t.recorders, r)
}

// AttachEngine registers an execution engine so /metrics reports its
// pool and plan-cache counters live (rather than the per-run deltas a
// recorder folds in). Idempotent; nil-safe.
func (t *Telemetry) AttachEngine(e *exec.Engine) {
	if t == nil || e == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, have := range t.engines {
		if have == e {
			return
		}
	}
	if len(t.engines) >= 64 {
		copy(t.engines, t.engines[1:])
		t.engines = t.engines[:len(t.engines)-1]
	}
	t.engines = append(t.engines, e)
}

// statsRecorder returns the recorder backing /stats (the most recently
// attached), or nil.
func (t *Telemetry) statsRecorder() *obs.Recorder {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if n := len(t.recorders); n > 0 {
		return t.recorders[n-1]
	}
	return nil
}

// attachedRecorders snapshots the recorder list.
func (t *Telemetry) attachedRecorders() []*obs.Recorder {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]*obs.Recorder, len(t.recorders))
	copy(out, t.recorders)
	return out
}

// aggregateStats sums counter state across every attached recorder —
// the source for the /metrics counter families. Each run records into
// exactly one recorder, so the sum attributes every run once even when
// a caller attaches fresh recorders over time (the bench tool uses one
// per graph). KappaLast is a gauge: the last nonzero value wins.
func (t *Telemetry) aggregateStats() obs.Stats {
	sum := obs.Stats{Schema: obs.StatsSchema}
	for _, r := range t.attachedRecorders() {
		s := r.Stats()
		sum.Runs += s.Runs
		sum.Totals.Tiles += s.Totals.Tiles
		sum.Totals.Rows += s.Totals.Rows
		sum.Totals.Flops += s.Totals.Flops
		sum.Totals.CoIterPicks += s.Totals.CoIterPicks
		sum.Totals.LinearPicks += s.Totals.LinearPicks
		sum.Totals.Gathered += s.Totals.Gathered
		sum.Accum.MarkerClears += s.Accum.MarkerClears
		sum.Accum.TableGrows += s.Accum.TableGrows
		sum.Accum.HashProbes += s.Accum.HashProbes
		sum.Accum.HashCollisions += s.Accum.HashCollisions
		sum.Pool.Hits += s.Pool.Hits
		sum.Pool.Misses += s.Pool.Misses
		sum.Pool.Steals += s.Pool.Steals
		sum.Pool.Resizes += s.Pool.Resizes
		sum.Pool.Evictions += s.Pool.Evictions
		sum.Pool.Quarantined += s.Pool.Quarantined
		sum.Pool.PlanHits += s.Pool.PlanHits
		sum.Pool.PlanMisses += s.Pool.PlanMisses
		sum.Retry.Attempts += s.Retry.Attempts
		sum.Retry.Retries += s.Retry.Retries
		sum.Retry.Degradations += s.Retry.Degradations
		sum.Retry.Failures += s.Retry.Failures
		sum.Retry.Stalls += s.Retry.Stalls
		sum.Recal.Updates += s.Recal.Updates
		sum.Recal.Explorations += s.Recal.Explorations
		sum.Recal.Recenters += s.Recal.Recenters
		sum.Recal.Snapbacks += s.Recal.Snapbacks
		if s.Recal.KappaLast != 0 {
			sum.Recal.KappaLast = s.Recal.KappaLast
		}
		sum.Sched.WaveRuns += s.Sched.WaveRuns
		sum.Sched.Levels += s.Sched.Levels
		sum.Sched.Waves += s.Sched.Waves
		sum.Sched.SerialWaves += s.Sched.SerialWaves
		sum.Sched.Barriers += s.Sched.Barriers
		sum.Sched.BarrierWaitNs += s.Sched.BarrierWaitNs
		for i := range sum.Sched.WaveTiles {
			sum.Sched.WaveTiles[i] += s.Sched.WaveTiles[i]
			sum.Sched.WaveFlops[i] += s.Sched.WaveFlops[i]
		}
	}
	return sum
}

// attachedEngines snapshots the engine list.
func (t *Telemetry) attachedEngines() []*exec.Engine {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]*exec.Engine, len(t.engines))
	copy(out, t.engines)
	return out
}

// RecordPhase implements obs.Sink: one closed phase span's wall time
// lands in that phase's rolling histogram.
//
//spgemm:hotpath
func (t *Telemetry) RecordPhase(p obs.Phase, d time.Duration) {
	if t == nil || p < 0 || int(p) >= obs.PhaseCount {
		return
	}
	t.phases[p].Record(int64(d))
}

// RecordRun implements obs.Sink: one completed run's latency lands in
// the run-level rolling histogram.
//
//spgemm:hotpath
func (t *Telemetry) RecordRun(d time.Duration) {
	if t == nil {
		return
	}
	t.runs.Record(int64(d))
}

// Event implements obs.Sink: every structured event is appended to the
// flight recorder.
//
//spgemm:hotpath
func (t *Telemetry) Event(runSeq int64, k obs.EventKind, p obs.Phase, a, b int64) {
	if t == nil {
		return
	}
	t.flight.Append(runSeq, k, p, a, b)
}

// PhaseWindow returns the rolling snapshot for one phase (zero snapshot
// for out-of-range phases or a nil registry).
func (t *Telemetry) PhaseWindow(p obs.Phase) HistSnapshot {
	if t == nil || p < 0 || int(p) >= obs.PhaseCount {
		return HistSnapshot{}
	}
	return t.phases[p].Snapshot()
}

// PhaseCumulative returns the lifetime snapshot for one phase.
func (t *Telemetry) PhaseCumulative(p obs.Phase) HistSnapshot {
	if t == nil || p < 0 || int(p) >= obs.PhaseCount {
		return HistSnapshot{}
	}
	return t.phases[p].Cumulative()
}

// RunWindow returns the rolling run-latency snapshot.
func (t *Telemetry) RunWindow() HistSnapshot {
	if t == nil {
		return HistSnapshot{}
	}
	return t.runs.Snapshot()
}

// RunCumulative returns the lifetime run-latency snapshot.
func (t *Telemetry) RunCumulative() HistSnapshot {
	if t == nil {
		return HistSnapshot{}
	}
	return t.runs.Cumulative()
}

// Flight exposes the flight recorder (nil for a nil registry).
func (t *Telemetry) Flight() *FlightRecorder {
	if t == nil {
		return nil
	}
	return t.flight
}

// Dumps reports how many failure dumps have been written.
func (t *Telemetry) Dumps() int64 {
	if t == nil {
		return 0
	}
	return t.dumps.Load()
}

// LastDumpPath returns the most recently written dump's path ("" when
// none).
func (t *Telemetry) LastDumpPath() string {
	if t == nil {
		return ""
	}
	if p := t.lastDump.Load(); p != nil {
		return *p
	}
	return ""
}

// BuildFailureDump classifies err and renders the flight ring as a dump
// document. reason overrides the classification when non-empty (the
// caller knows better — e.g. "retry-exhausted" after the ladder gave
// up on a retryable error).
func (t *Telemetry) BuildFailureDump(reason string, err error) FlightDump {
	if reason == "" {
		reason = classifyFailure(err)
	}
	var errText string
	if err != nil {
		errText = err.Error()
	}
	var stall *FlightStall
	var se *sched.StallError
	if errors.As(err, &se) {
		stall = &FlightStall{
			TimeoutNS: int64(se.Timeout),
			Done:      se.Done,
			Tiles:     se.Tiles,
			Stacks:    string(se.Stacks),
		}
	}
	var panicStack string
	var pe *sched.PanicError
	if errors.As(err, &pe) {
		panicStack = string(pe.Stack)
	}
	return t.flight.BuildDump(reason, errText, stall, panicStack)
}

// classifyFailure maps an error chain onto a dump reason. The typed
// captures (not core's sentinels) drive the classification, so the
// package needs no dependency on the kernel layer.
func classifyFailure(err error) string {
	if err == nil {
		return "forced"
	}
	var se *sched.StallError
	if errors.As(err, &se) {
		return "stall"
	}
	var pe *sched.PanicError
	if errors.As(err, &pe) {
		return "panic"
	}
	return "retry-exhausted"
}

// DumpFailure writes a failure dump to the configured FlightPath,
// validating the document against the flightrec/v1 schema before it
// lands (a dump that cannot be parsed back is worse than no dump).
// Returns the path written. Never called from the hot path — only when
// a multiply has already failed terminally.
func (t *Telemetry) DumpFailure(reason string, err error) (string, error) {
	if t == nil {
		return "", nil
	}
	d := t.BuildFailureDump(reason, err)
	data, merr := obs.MarshalJSONBytes(d)
	if merr != nil {
		return "", fmt.Errorf("telemetry: encode flight dump: %w", merr)
	}
	if verr := ValidateFlightJSON(data); verr != nil {
		return "", fmt.Errorf("telemetry: flight dump failed self-validation: %w", verr)
	}
	if werr := os.WriteFile(t.cfg.FlightPath, data, 0o644); werr != nil {
		return "", fmt.Errorf("telemetry: write flight dump: %w", werr)
	}
	t.dumps.Add(1)
	path := t.cfg.FlightPath
	t.lastDump.Store(&path)
	return path, nil
}

// chaosTap wraps an Injector so every injected fault also lands in the
// flight recorder — the postmortem shows the chaos that preceded the
// failure.
type chaosTap struct {
	inner chaos.Injector
	t     *Telemetry
}

// Decide implements chaos.Injector.
func (c *chaosTap) Decide(p chaos.Point) chaos.Fault {
	f := c.inner.Decide(p)
	if f.Kind != chaos.KindNone {
		c.t.Event(0, obs.EventChaos, obs.PhaseNone, int64(p), int64(f.Kind))
	}
	return f
}

// WrapInjector returns inj with a flight-recorder tap: armed decisions
// are recorded as EventChaos before they execute. A nil inj (or nil
// registry) passes through unchanged.
func (t *Telemetry) WrapInjector(inj chaos.Injector) chaos.Injector {
	if t == nil || inj == nil {
		return inj
	}
	return &chaosTap{inner: inj, t: t}
}
