package telemetry

import (
	"context"
	"expvar"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"strings"
	"time"

	"maskedspgemm/internal/obs"
)

// Handler returns the debug mux:
//
//	/metrics      Prometheus text exposition (format 0.0.4)
//	/stats        stats/v1 JSON snapshot of the attached recorder
//	/flight       forced flight-recorder dump (flightrec/v1 JSON)
//	/healthz      200 when every attached engine passes SelfCheck
//	/debug/vars   expvar
//	/debug/pprof  net/http/pprof
//
// Handlers read registry state; none of them mutate anything except
// /flight, which bumps nothing (a forced dump is rendered to the
// response, not written to disk).
func (t *Telemetry) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := t.WriteMetrics(w); err != nil {
			// Headers are gone; all we can do is log-by-response.
			fmt.Fprintf(w, "# error: %v\n", err)
		}
	})
	mux.HandleFunc("/stats", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if err := obs.WriteJSON(w, t.statsRecorder().Stats()); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/flight", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if err := obs.WriteJSON(w, t.BuildFailureDump("forced", nil)); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		for _, e := range t.attachedEngines() {
			if err := e.SelfCheck(); err != nil {
				http.Error(w, err.Error(), http.StatusServiceUnavailable)
				return
			}
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		io.WriteString(w, "ok\n")
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Server is one running debug listener.
type Server struct {
	srv  *http.Server
	addr string
	// done is closed when the serve goroutine returns, so Close can
	// join it instead of racing process exit against the listener
	// teardown.
	done chan struct{}
}

// Addr is the bound listen address (host:port, with the real port when
// the caller asked for :0).
func (s *Server) Addr() string {
	if s == nil {
		return ""
	}
	return s.addr
}

// URL is the server's http base URL.
func (s *Server) URL() string {
	if s == nil {
		return ""
	}
	host := s.addr
	// A wildcard bind is not dialable; rewrite to loopback.
	if strings.HasPrefix(host, "0.0.0.0:") || strings.HasPrefix(host, "[::]:") {
		_, port, err := net.SplitHostPort(host)
		if err == nil {
			host = net.JoinHostPort("127.0.0.1", port)
		}
	}
	return "http://" + host
}

// Close shuts the listener down, waiting briefly for in-flight
// requests, then joins the serve goroutine.
func (s *Server) Close() error {
	if s == nil {
		return nil
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	err := s.srv.Shutdown(ctx)
	select {
	case <-s.done:
	case <-ctx.Done():
	}
	return err
}

// Start binds addr (":0" picks a free port) and serves the debug
// handler until Close. Serving happens on a background goroutine; the
// returned Server reports the bound address immediately.
func (t *Telemetry) Start(addr string) (*Server, error) {
	if t == nil {
		return nil, fmt.Errorf("telemetry: Start on a nil registry")
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("telemetry: listen %s: %w", addr, err)
	}
	srv := &http.Server{Handler: t.Handler(), ReadHeaderTimeout: 5 * time.Second}
	s := &Server{srv: srv, addr: ln.Addr().String(), done: make(chan struct{})}
	go func() {
		// Serve returns on Shutdown (Close) with ErrServerClosed — the
		// normal path; anything else has no channel to surface through
		// (the caller moved on), so drop it — the smoke gate's scrapes
		// would fail loudly anyway. Closing done joins the goroutine to
		// Close.
		defer close(s.done)
		_ = srv.Serve(ln)
	}()
	return s, nil
}

// SelfCheck scrapes a running debug server and verifies the acceptance
// contract end to end: /metrics parses as exposition format and carries
// every required series with at least one completed run, /stats is a
// schema-valid stats/v1 document, /flight is a schema-valid flightrec/v1
// document, and /healthz reports healthy. Used by the CLI smoke gate
// (`spgemm-bench -telemetry-check`).
func SelfCheck(baseURL string) error {
	client := &http.Client{Timeout: 10 * time.Second}
	get := func(path string) ([]byte, error) {
		resp, err := client.Get(baseURL + path)
		if err != nil {
			return nil, fmt.Errorf("telemetry: GET %s: %w", path, err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(io.LimitReader(resp.Body, 32<<20))
		if err != nil {
			return nil, fmt.Errorf("telemetry: read %s: %w", path, err)
		}
		if resp.StatusCode != http.StatusOK {
			return nil, fmt.Errorf("telemetry: GET %s: status %d: %s", path, resp.StatusCode, strings.TrimSpace(string(body)))
		}
		return body, nil
	}

	metrics, err := get("/metrics")
	if err != nil {
		return err
	}
	samples, err := ParseExposition(strings.NewReader(string(metrics)))
	if err != nil {
		return err
	}
	if missing := MissingSeries(samples, RequiredSeries); len(missing) > 0 {
		return fmt.Errorf("telemetry: /metrics missing required series: %s", strings.Join(missing, ", "))
	}
	runs, ok := FindSample(samples, "spgemm_runs_total")
	if !ok || runs.Value <= 0 {
		return fmt.Errorf("telemetry: /metrics reports no completed runs (spgemm_runs_total=%g)", runs.Value)
	}

	stats, err := get("/stats")
	if err != nil {
		return err
	}
	if err := obs.ValidateStatsJSON(stats); err != nil {
		return fmt.Errorf("telemetry: /stats: %w", err)
	}

	flight, err := get("/flight")
	if err != nil {
		return err
	}
	if err := ValidateFlightJSON(flight); err != nil {
		return fmt.Errorf("telemetry: /flight: %w", err)
	}

	if _, err := get("/healthz"); err != nil {
		return err
	}
	return nil
}
