package telemetry

import (
	"fmt"
	"sync"

	"maskedspgemm/internal/obs"
)

// FlightSchema identifies the JSON layout of a flight-recorder dump.
// Bump only on breaking changes; additive fields keep v1.
const FlightSchema = "maskedspgemm/flightrec/v1"

// flightEvent is one ring slot: a fixed-size value struct so Append
// never allocates. Field meanings mirror obs.Sink.Event.
type flightEvent struct {
	seq    int64 // global append sequence, monotonic
	t      int64 // wall time, unix nanos
	runSeq int64 // multiply sequence id, 0 when unscoped
	kind   obs.EventKind
	phase  int8 // obs.Phase, -1 for PhaseNone
	a, b   int64
}

// FlightRecorder is a fixed-capacity ring buffer of structured events —
// the black box. The kernel appends phase transitions, tile-batch
// progress, retry-ladder steps, chaos injections and κ snapbacks as
// they happen; when a stall, panic or retry exhaustion fires, the ring
// holds the last capacity events leading up to it, and Dump serializes
// them with the failure's stacks into a self-validating JSON document.
//
// Append is allocation-free: a short mutex hold and value stores into
// preallocated slots. A mutex (not atomics) keeps slot writes and the
// head index coherent; the hold is a few stores, far below the cost of
// the span the event annotates.
type FlightRecorder struct {
	mu      sync.Mutex
	events  []flightEvent
	head    int   // next slot to write
	size    int   // occupied slots, ≤ len(events)
	seq     int64 // total appends ever
	dropped int64 // appends that overwrote an unread slot
	now     func() int64
}

// NewFlightRecorder returns a ring of the given capacity (minimum 16).
// now supplies wall time in unix nanoseconds.
func NewFlightRecorder(capacity int, now func() int64) *FlightRecorder {
	if capacity < 16 {
		capacity = 16
	}
	return &FlightRecorder{events: make([]flightEvent, capacity), now: now}
}

// Append records one event, overwriting the oldest when full.
//
//spgemm:hotpath
func (f *FlightRecorder) Append(runSeq int64, k obs.EventKind, p obs.Phase, a, b int64) {
	t := f.now()
	f.mu.Lock()
	f.seq++
	f.events[f.head] = flightEvent{
		seq: f.seq, t: t, runSeq: runSeq, kind: k, phase: int8(p), a: a, b: b,
	}
	f.head++
	if f.head == len(f.events) {
		f.head = 0
	}
	if f.size < len(f.events) {
		f.size++
	} else {
		f.dropped++
	}
	f.mu.Unlock()
}

// Len reports the number of retained events.
func (f *FlightRecorder) Len() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.size
}

// Seq reports the total number of events ever appended.
func (f *FlightRecorder) Seq() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.seq
}

// Dropped reports how many events were overwritten before a dump.
func (f *FlightRecorder) Dropped() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.dropped
}

// snapshot copies the retained events oldest-first.
func (f *FlightRecorder) snapshot() (events []flightEvent, dropped int64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	events = make([]flightEvent, 0, f.size)
	start := f.head - f.size
	if start < 0 {
		start += len(f.events)
	}
	for i := 0; i < f.size; i++ {
		events = append(events, f.events[(start+i)%len(f.events)])
	}
	return events, f.dropped
}

// FlightEvent is one event in a dump document.
type FlightEvent struct {
	// Seq is the recorder-global append sequence (strictly increasing
	// within a dump; gaps mean events were overwritten between them).
	Seq int64 `json:"seq"`
	// TUnixNano is the event's wall time.
	TUnixNano int64 `json:"t_unix_nano"`
	// RunSeq is the multiply sequence id the event belongs to (0 when
	// not scoped to a run).
	RunSeq int64 `json:"run_seq,omitempty"`
	// Kind is the stable event-kind identifier (obs.EventKind.String).
	Kind string `json:"kind"`
	// Phase is the pipeline phase identifier, omitted for PhaseNone.
	Phase string `json:"phase,omitempty"`
	// A and B are the kind-dependent payload values.
	A int64 `json:"a,omitempty"`
	B int64 `json:"b,omitempty"`
}

// FlightStall carries the stall watchdog's verdict into the dump.
type FlightStall struct {
	// TimeoutNS is the stall threshold that fired.
	TimeoutNS int64 `json:"timeout_ns"`
	// Done and Tiles are the scheduler's progress at the verdict.
	Done  int64 `json:"done"`
	Tiles int64 `json:"tiles"`
	// Stacks is the all-goroutine stack dump taken at the verdict.
	Stacks string `json:"stacks"`
}

// FlightDump is the flightrec/v1 document: the failure that triggered
// the dump plus the event window leading up to it.
type FlightDump struct {
	// Schema is always FlightSchema.
	Schema string `json:"schema"`
	// DumpedAtUnixNano is when the dump was taken.
	DumpedAtUnixNano int64 `json:"dumped_at_unix_nano"`
	// Reason classifies the trigger: "stall", "panic", "retry-exhausted"
	// or "forced" (operator-requested via /flight).
	Reason string `json:"reason"`
	// Error is the triggering error's text ("" for forced dumps).
	Error string `json:"error,omitempty"`
	// Stall is present when the trigger carried a sched.StallError.
	Stall *FlightStall `json:"stall,omitempty"`
	// PanicStack is the recovered panic's stack when the trigger was a
	// contained panic that recorded one.
	PanicStack string `json:"panic_stack,omitempty"`
	// Dropped counts events overwritten before the dump (the ring was
	// smaller than the event stream).
	Dropped int64 `json:"dropped"`
	// Events is the retained window, oldest first.
	Events []FlightEvent `json:"events"`
}

// BuildDump renders the current ring as a dump document.
func (f *FlightRecorder) BuildDump(reason string, errText string, stall *FlightStall, panicStack string) FlightDump {
	events, dropped := f.snapshot()
	d := FlightDump{
		Schema:           FlightSchema,
		DumpedAtUnixNano: f.now(),
		Reason:           reason,
		Error:            errText,
		Stall:            stall,
		PanicStack:       panicStack,
		Dropped:          dropped,
		Events:           make([]FlightEvent, 0, len(events)),
	}
	for _, e := range events {
		fe := FlightEvent{
			Seq:       e.seq,
			TUnixNano: e.t,
			RunSeq:    e.runSeq,
			Kind:      e.kind.String(),
			A:         e.a,
			B:         e.b,
		}
		if p := obs.Phase(e.phase); p != obs.PhaseNone {
			fe.Phase = p.String()
		}
		d.Events = append(d.Events, fe)
	}
	return d
}

// ValidateFlightJSON checks that data is a schema-conforming
// flightrec/v1 document: strict round-trip, the schema tag, known event
// kinds, and strictly increasing event sequence numbers.
func ValidateFlightJSON(data []byte) error {
	var d FlightDump
	if err := obs.RoundTrip(data, &d); err != nil {
		return err
	}
	if d.Schema != FlightSchema {
		return fmt.Errorf("telemetry: schema %q, want %q", d.Schema, FlightSchema)
	}
	switch d.Reason {
	case "stall", "panic", "retry-exhausted", "forced":
	default:
		return fmt.Errorf("telemetry: unknown dump reason %q", d.Reason)
	}
	var prev int64
	for i, e := range d.Events {
		if _, ok := obs.EventKindByName(e.Kind); !ok {
			return fmt.Errorf("telemetry: event %d has unknown kind %q", i, e.Kind)
		}
		if e.Seq <= prev {
			return fmt.Errorf("telemetry: event %d sequence %d not increasing (prev %d)", i, e.Seq, prev)
		}
		prev = e.Seq
	}
	return nil
}
