package telemetry

import (
	"strings"
	"testing"

	"maskedspgemm/internal/obs"
)

// TestFlightRingWrap pins the ring semantics: a full recorder keeps the
// newest capacity events oldest-first, counts overwrites, and its dump's
// sequence numbers expose the gap.
func TestFlightRingWrap(t *testing.T) {
	clk := &testClock{t: 100}
	f := NewFlightRecorder(0, clk.now) // clamps to the 16 minimum
	for i := 0; i < 20; i++ {
		clk.advance(1)
		f.Append(int64(i), obs.EventPhase, obs.PhaseExecKernel, int64(i), 0)
	}
	if got := f.Len(); got != 16 {
		t.Fatalf("Len = %d, want 16", got)
	}
	if got := f.Seq(); got != 20 {
		t.Fatalf("Seq = %d, want 20", got)
	}
	if got := f.Dropped(); got != 4 {
		t.Fatalf("Dropped = %d, want 4", got)
	}
	d := f.BuildDump("forced", "", nil, "")
	if len(d.Events) != 16 {
		t.Fatalf("dump has %d events, want 16", len(d.Events))
	}
	if d.Events[0].Seq != 5 || d.Events[15].Seq != 20 {
		t.Fatalf("dump window [%d,%d], want [5,20]", d.Events[0].Seq, d.Events[15].Seq)
	}
	if d.Dropped != 4 {
		t.Fatalf("dump dropped %d, want 4", d.Dropped)
	}
	for i := 1; i < len(d.Events); i++ {
		if d.Events[i].TUnixNano < d.Events[i-1].TUnixNano {
			t.Fatalf("event %d out of time order", i)
		}
	}
}

// TestFlightDumpValidates pins that a built dump round-trips through the
// strict validator, and that each class of corruption is rejected.
func TestFlightDumpValidates(t *testing.T) {
	clk := &testClock{t: 7}
	f := NewFlightRecorder(16, clk.now)
	f.Append(1, obs.EventRunStart, obs.PhaseNone, 0, 0)
	f.Append(1, obs.EventPhase, obs.PhasePlanRowWork, 123, 0)
	f.Append(1, obs.EventRunEnd, obs.PhaseNone, 4, 2)

	d := f.BuildDump("stall", "sched: no tile progress", &FlightStall{
		TimeoutNS: 25e6, Done: 3, Tiles: 64, Stacks: "goroutine 1 [running]:\n...",
	}, "")
	data, err := obs.MarshalJSONBytes(d)
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateFlightJSON(data); err != nil {
		t.Fatalf("valid dump rejected: %v", err)
	}

	corrupt := func(name, from, to, wantErr string) {
		t.Helper()
		bad := strings.Replace(string(data), from, to, 1)
		if bad == string(data) {
			t.Fatalf("%s: replacement %q not found in dump", name, from)
		}
		err := ValidateFlightJSON([]byte(bad))
		if err == nil {
			t.Fatalf("%s: corrupted dump accepted", name)
		}
		if !strings.Contains(err.Error(), wantErr) {
			t.Fatalf("%s: error %q, want mention of %q", name, err, wantErr)
		}
	}
	corrupt("schema", FlightSchema, "maskedspgemm/flightrec/v9", "schema")
	corrupt("reason", `"reason": "stall"`, `"reason": "vibes"`, "reason")
	corrupt("kind", `"kind": "run_start"`, `"kind": "warpcore"`, "kind")
	corrupt("seq", `"seq": 2`, `"seq": 1`, "not increasing")
}

// TestFlightEventPhaseOmitted pins that PhaseNone events omit the phase
// field while phased events carry the stable phase name.
func TestFlightEventPhaseOmitted(t *testing.T) {
	clk := &testClock{}
	f := NewFlightRecorder(16, clk.now)
	f.Append(0, obs.EventRetry, obs.PhaseNone, 1, 0)
	f.Append(0, obs.EventPhase, obs.PhaseExecKernel, 1, 0)
	d := f.BuildDump("forced", "", nil, "")
	if d.Events[0].Phase != "" {
		t.Fatalf("PhaseNone event has phase %q, want empty", d.Events[0].Phase)
	}
	if d.Events[1].Phase != obs.PhaseExecKernel.String() {
		t.Fatalf("phased event has phase %q, want %q", d.Events[1].Phase, obs.PhaseExecKernel.String())
	}
}
