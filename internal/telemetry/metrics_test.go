package telemetry

import (
	"strings"
	"testing"
	"time"

	"maskedspgemm/internal/exec"
	"maskedspgemm/internal/obs"
)

// TestWriteMetricsParses renders a populated registry and requires its
// own parser to accept the output with every required series present —
// the exposition writer and the smoke-gate scraper must stay in sync.
func TestWriteMetricsParses(t *testing.T) {
	clk := &testClock{t: 1}
	tel := testTelemetry(t, clk)
	rec := obs.NewRecorder()
	tel.AttachRecorder(rec)
	rec.AddRun()
	rec.AddRetry(obs.RetryCounters{Attempts: 1})
	tel.RecordPhase(obs.PhaseExecKernel, 3*time.Millisecond)
	tel.RecordRun(5 * time.Millisecond)

	var sb strings.Builder
	if err := tel.WriteMetrics(&sb); err != nil {
		t.Fatal(err)
	}
	samples, err := ParseExposition(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatalf("own exposition does not parse: %v\n%s", err, sb.String())
	}
	if missing := MissingSeries(samples, RequiredSeries); len(missing) > 0 {
		t.Fatalf("missing required series %v in:\n%s", missing, sb.String())
	}

	runs, ok := FindSample(samples, "spgemm_runs_total")
	if !ok || runs.Value != 1 {
		t.Fatalf("spgemm_runs_total = %v (ok=%v), want 1", runs.Value, ok)
	}
	count, ok := FindSample(samples, "spgemm_run_latency_seconds_count")
	if !ok || count.Value != 1 {
		t.Fatalf("run latency count = %v (ok=%v), want 1", count.Value, ok)
	}
	sum, ok := FindSample(samples, "spgemm_run_latency_seconds_sum")
	if !ok || sum.Value != 0.005 {
		t.Fatalf("run latency sum = %v, want 0.005", sum.Value)
	}
	p50, ok := FindSample(samples, "spgemm_run_latency_seconds", `quantile="0.5"`)
	if !ok || p50.Value != 0.005 {
		t.Fatalf("run latency p50 = %v (ok=%v), want 0.005 (single observation)", p50.Value, ok)
	}
	kp50, ok := FindSample(samples, "spgemm_phase_latency_seconds",
		`phase="exec.kernel"`, `quantile="0.5"`)
	if !ok || kp50.Value != 0.003 {
		t.Fatalf("exec.kernel p50 = %v (ok=%v), want 0.003", kp50.Value, ok)
	}
	// Every phase family is present, even unobserved ones (zero-valued).
	for p := obs.Phase(0); int(p) < obs.PhaseCount; p++ {
		if _, ok := FindSample(samples, "spgemm_phase_latency_seconds_count",
			`phase="`+p.String()+`"`); !ok {
			t.Fatalf("phase %s has no _count sample", p)
		}
	}
}

// TestMetricsPoolFromEngine pins the pool-counter source selection: with
// an engine attached /metrics reports its live counters; without one it
// falls back to the recorder's folded deltas.
func TestMetricsPoolFromEngine(t *testing.T) {
	clk := &testClock{t: 1}

	// No engine: recorder deltas are the source.
	tel := testTelemetry(t, clk)
	rec := obs.NewRecorder()
	tel.AttachRecorder(rec)
	rec.AddPool(obs.PoolCounters{Hits: 7, Misses: 3})
	samples := scrapeString(t, tel)
	hits, _ := FindSample(samples, "spgemm_pool_hits_total")
	rate, _ := FindSample(samples, "spgemm_pool_hit_rate")
	if hits.Value != 7 || rate.Value != 0.7 {
		t.Fatalf("recorder-sourced pool: hits=%v rate=%v, want 7/0.7", hits.Value, rate.Value)
	}

	// Engine attached: live engine counters win (zero here — no traffic
	// has touched this engine, regardless of what the recorder folded).
	tel2 := testTelemetry(t, clk)
	rec2 := obs.NewRecorder()
	tel2.AttachRecorder(rec2)
	rec2.AddPool(obs.PoolCounters{Hits: 7, Misses: 3})
	tel2.AttachEngine(exec.New(exec.Config{}))
	samples = scrapeString(t, tel2)
	hits, _ = FindSample(samples, "spgemm_pool_hits_total")
	if hits.Value != 0 {
		t.Fatalf("engine-sourced pool hits = %v, want 0 (idle engine)", hits.Value)
	}
}

func scrapeString(t *testing.T, tel *Telemetry) []Sample {
	t.Helper()
	var sb strings.Builder
	if err := tel.WriteMetrics(&sb); err != nil {
		t.Fatal(err)
	}
	samples, err := ParseExposition(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	return samples
}

// TestParseExpositionRejects pins the parser's strictness: malformed
// lines are errors, not silent skips.
func TestParseExpositionRejects(t *testing.T) {
	bad := []string{
		"name_only\n",
		"unbalanced{brace 1\n",
		"metric 1 2 3 extra\n", // name + 3 trailing fields: bad value line
		"metric abc\n",
		"{} 5\n",
	}
	for _, text := range bad {
		if _, err := ParseExposition(strings.NewReader(text)); err == nil {
			t.Errorf("ParseExposition accepted %q", text)
		}
	}
	// Comments, blanks, label blocks and optional timestamps all parse.
	good := "# HELP x y\n# TYPE x counter\n\nx{a=\"b\",c=\"d\"} 4\ny 2 1712345678\n"
	samples, err := ParseExposition(strings.NewReader(good))
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) != 2 || samples[0].Labels != `a="b",c="d"` || samples[0].Value != 4 {
		t.Fatalf("parsed %+v", samples)
	}
}

// TestMissingSeries pins the _sum/_count suffix folding.
func TestMissingSeries(t *testing.T) {
	samples := []Sample{{Name: "a_sum"}, {Name: "b"}}
	missing := MissingSeries(samples, []string{"a", "b", "c"})
	if len(missing) != 1 || missing[0] != "c" {
		t.Fatalf("missing = %v, want [c]", missing)
	}
}
