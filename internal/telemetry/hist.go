// Package telemetry is the live-observability layer: lock-free
// log-bucketed latency histograms, windowed time-series views, a
// fixed-capacity flight recorder for postmortems, and an opt-in HTTP
// debug server exposing all of it (Prometheus text exposition, stats/v1
// JSON, expvar, pprof).
//
// Everything in internal/obs is post-hoc — a Stats snapshot read after
// the multiply returns. This package inverts the flow: it implements
// obs.Sink, so every phase span, run latency and structured event the
// recorder sees is also pushed here as it happens, and an operator can
// watch p50/p99 per kernel phase, pool hit rates and retry activity on
// a live process — or autopsy a stall from the flight-recorder dump —
// without rebuilding or re-running anything.
//
// The contract the kernel depends on: the record path (Hist.Record,
// Windowed.Record, Telemetry's Sink methods, FlightRecorder.Append)
// never allocates and never blocks on anything slower than a short
// mutex hold. The AllocsPerRun regression tests pin the zero-alloc
// property; the hotpathalloc analyzer rejects reintroductions.
package telemetry

import (
	"math"
	"math/bits"
	"sync/atomic"
)

// The histogram buckets values (nanoseconds, but the histogram is
// unit-agnostic) on a log-linear grid, HDR-histogram style: each
// power-of-two octave is split into 2^histSubBits linear sub-buckets,
// so the relative width of any bucket is at most 2^-histSubBits ≈ 3.1%
// — quantile estimates are off by at most half that grid step plus the
// sub-unit rounding of tiny values.
const (
	histSubBits    = 5
	histSubBuckets = 1 << histSubBits // 32
	// histBuckets covers the full non-negative int64 range: values below
	// 2^(histSubBits+1) get exact unit buckets (the first two octaves
	// merged, 64 buckets), and each of the remaining 64-histSubBits-1
	// octaves contributes histSubBuckets more.
	histBuckets = (64-histSubBits-1)*histSubBuckets + 2*histSubBuckets // 1920
)

// bucketIndex maps a non-negative value onto the log-linear grid.
// Values < 64 index directly (exact); larger values take the top
// histSubBits+1 significant bits.
//
//spgemm:hotpath
func bucketIndex(v int64) int {
	if v < 0 {
		v = 0
	}
	u := uint64(v)
	if u < 2*histSubBuckets {
		return int(u)
	}
	shift := bits.Len64(u) - 1 - histSubBits
	return shift*histSubBuckets + int(u>>uint(shift))
}

// bucketLow returns the smallest value mapped to bucket idx — the
// inclusive lower bound used when reconstructing quantiles.
func bucketLow(idx int) int64 {
	if idx < 2*histSubBuckets {
		return int64(idx)
	}
	shift := idx / histSubBuckets
	sub := idx % histSubBuckets
	return int64(uint64(histSubBuckets+sub) << uint(shift-1))
}

// bucketHigh returns the largest value mapped to bucket idx.
func bucketHigh(idx int) int64 {
	if idx >= histBuckets-1 {
		return math.MaxInt64
	}
	return bucketLow(idx+1) - 1
}

// Hist is a lock-free, mergeable log-bucketed histogram. Record is
// wait-free (a handful of atomic adds) and allocation-free; Snapshot
// produces an immutable copy that can be merged with other snapshots
// associatively, so per-shard or per-window histograms aggregate
// exactly.
//
// Concurrent Records interleave their atomic adds, so a Snapshot taken
// mid-record can be transiently inconsistent (count ahead of buckets or
// vice versa); totals are exact once writers quiesce, which is what the
// bit-stability test pins.
type Hist struct {
	count   atomic.Int64
	sum     atomic.Int64
	minimum atomic.Int64 // MaxInt64 when empty
	maximum atomic.Int64 // MinInt64 when empty
	buckets [histBuckets]atomic.Int64
}

// NewHist returns an empty histogram.
func NewHist() *Hist {
	h := &Hist{}
	h.minimum.Store(math.MaxInt64)
	h.maximum.Store(math.MinInt64)
	return h
}

// Record folds one observation in. Negative values clamp to zero.
// Wait-free and allocation-free.
//
//spgemm:hotpath
func (h *Hist) Record(v int64) {
	if v < 0 {
		v = 0
	}
	h.buckets[bucketIndex(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	for {
		cur := h.minimum.Load()
		if v >= cur || h.minimum.CompareAndSwap(cur, v) {
			break
		}
	}
	for {
		cur := h.maximum.Load()
		if v <= cur || h.maximum.CompareAndSwap(cur, v) {
			break
		}
	}
}

// Reset zeroes the histogram. Not atomic with respect to concurrent
// Records; callers quiesce writers or accept the raced observations.
func (h *Hist) Reset() {
	h.count.Store(0)
	h.sum.Store(0)
	h.minimum.Store(math.MaxInt64)
	h.maximum.Store(math.MinInt64)
	for i := range h.buckets {
		h.buckets[i].Store(0)
	}
}

// HistSnapshot is an immutable copy of a Hist. The zero value is a
// valid empty snapshot.
type HistSnapshot struct {
	Count int64
	Sum   int64
	Min   int64 // undefined when Count == 0
	Max   int64 // undefined when Count == 0
	// buckets is nil for an empty snapshot; shared, never mutated.
	buckets *[histBuckets]int64
}

// Snapshot copies the histogram's current state.
func (h *Hist) Snapshot() HistSnapshot {
	s := HistSnapshot{
		Count: h.count.Load(),
		Sum:   h.sum.Load(),
		Min:   h.minimum.Load(),
		Max:   h.maximum.Load(),
	}
	if s.Count == 0 {
		return HistSnapshot{}
	}
	b := new([histBuckets]int64)
	for i := range h.buckets {
		b[i] = h.buckets[i].Load()
	}
	s.buckets = b
	return s
}

// Merge returns the bucket-wise sum of s and o. Merging is associative
// and commutative, so shard histograms combine in any order to the same
// result.
func (s HistSnapshot) Merge(o HistSnapshot) HistSnapshot {
	if s.Count == 0 {
		return o
	}
	if o.Count == 0 {
		return s
	}
	out := HistSnapshot{
		Count: s.Count + o.Count,
		Sum:   s.Sum + o.Sum,
		Min:   min(s.Min, o.Min),
		Max:   max(s.Max, o.Max),
	}
	b := new([histBuckets]int64)
	for i := range b {
		b[i] = s.buckets[i] + o.buckets[i]
	}
	out.buckets = b
	return out
}

// Quantile estimates the q-quantile (q in [0,1]) from the bucket
// counts: it walks to the bucket holding the q·Count-th observation and
// returns that bucket's midpoint, clamped to the observed [Min, Max].
// The estimate's relative error is bounded by the grid (≈ 2^-5/2) for
// values ≥ 64 and exact below. Returns 0 for an empty snapshot.
func (s HistSnapshot) Quantile(q float64) int64 {
	if s.Count == 0 || s.buckets == nil {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	// The rank is 1-based: q=0 hits the first observation, q=1 the last.
	rank := int64(math.Ceil(q * float64(s.Count)))
	if rank < 1 {
		rank = 1
	}
	var seen int64
	for i, c := range s.buckets {
		if c == 0 {
			continue
		}
		seen += c
		if seen >= rank {
			lo, hi := bucketLow(i), bucketHigh(i)
			mid := lo + (hi-lo)/2
			return min(max(mid, s.Min), s.Max)
		}
	}
	return s.Max
}

// Mean returns the exact arithmetic mean (0 when empty).
func (s HistSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}
