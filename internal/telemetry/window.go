package telemetry

import (
	"sync"
	"sync/atomic"
)

// Windowed is a rolling time-series view over a Hist: observations land
// in the current slot's histogram, and every windowNanos the slot
// rotates into a ring of retired snapshots. Readers merge the live slot
// with the retained ring, so quantiles reflect (roughly) the last
// slots × window of activity instead of the process's whole lifetime —
// the difference between "p99 right now" and "p99 since boot".
//
// Record is lock-free: one atomic pointer load plus a Hist.Record.
// Rotation is lazy — it happens on the read path (Snapshot/Cumulative),
// driven by an injectable clock, so an idle series costs nothing and
// tests control time exactly. The cost of lazy rotation: observations
// recorded between a slot's deadline passing and the next read land in
// the stale slot and are retired with it, shifting them one window
// earlier. For latency telemetry that skew is benign and bounded by the
// read interval.
type Windowed struct {
	// cur is the live histogram; swapped wholesale at rotation so the
	// record path never takes the mutex.
	cur atomic.Pointer[Hist]

	mu sync.Mutex
	// spare is the histogram that becomes live at the next rotation; the
	// retired one is snapshotted, reset, and becomes the new spare, so a
	// Windowed allocates exactly two Hists over its lifetime.
	spare *Hist
	// ring holds the retired per-window snapshots, oldest first.
	ring []HistSnapshot
	// cum accumulates every retired snapshot, so Cumulative (lifetime
	// totals for Prometheus counters) survives ring eviction.
	cum HistSnapshot
	// rotateAt is the wall deadline (nanos) of the current slot.
	rotateAt    int64
	windowNanos int64
	now         func() int64
}

// NewWindowed returns a rolling view with the given slot width in
// nanoseconds and slots retired snapshots of history. now supplies
// wall time in nanoseconds (injectable for tests).
func NewWindowed(windowNanos int64, slots int, now func() int64) *Windowed {
	if windowNanos <= 0 {
		windowNanos = 60e9
	}
	if slots < 1 {
		slots = 1
	}
	w := &Windowed{
		spare:       NewHist(),
		ring:        make([]HistSnapshot, 0, slots),
		windowNanos: windowNanos,
		now:         now,
	}
	w.cur.Store(NewHist())
	w.rotateAt = now() + windowNanos
	return w
}

// Record folds one observation into the live slot. Lock-free and
// allocation-free.
//
//spgemm:hotpath
func (w *Windowed) Record(v int64) {
	w.cur.Load().Record(v)
}

// rotateLocked retires expired slots. Caller holds w.mu.
func (w *Windowed) rotateLocked() {
	t := w.now()
	if t < w.rotateAt {
		return
	}
	// Swap the live histogram for the spare, snapshot and reset the
	// retired one. If more than one window elapsed idle, the intervening
	// slots were empty; retire them as empties so ring age stays honest.
	for t >= w.rotateAt {
		old := w.cur.Swap(w.spare)
		w.spare = old
		snap := old.Snapshot()
		old.Reset()
		if len(w.ring) == cap(w.ring) && cap(w.ring) > 0 {
			copy(w.ring, w.ring[1:])
			w.ring = w.ring[:len(w.ring)-1]
		}
		w.ring = append(w.ring, snap)
		w.cum = w.cum.Merge(snap)
		w.rotateAt += w.windowNanos
		if t-w.rotateAt > 64*w.windowNanos {
			// Long idle gap: skip ahead instead of retiring thousands of
			// empty slots one by one.
			w.ring = w.ring[:0]
			w.rotateAt = t + w.windowNanos
			break
		}
	}
}

// Snapshot merges the live slot with the retained ring: the rolling
// view the /metrics quantiles are computed from.
func (w *Windowed) Snapshot() HistSnapshot {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.rotateLocked()
	out := w.cur.Load().Snapshot()
	for _, s := range w.ring {
		out = out.Merge(s)
	}
	return out
}

// Cumulative merges everything ever recorded — retired and live — for
// lifetime counters (Prometheus _count/_sum are monotonic).
func (w *Windowed) Cumulative() HistSnapshot {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.rotateLocked()
	return w.cum.Merge(w.cur.Load().Snapshot())
}
