package telemetry

import "testing"

// testClock is an injectable wall clock for rotation tests.
type testClock struct{ t int64 }

func (c *testClock) now() int64       { return c.t }
func (c *testClock) advance(by int64) { c.t += by }

// TestWindowRotation drives the lazy rotation with an injected clock:
// observations retire into the ring when a read crosses their slot's
// deadline, fall out of the rolling view once the ring wraps, and never
// leave the cumulative view. Rotation is read-driven, so each phase
// forces it with a Snapshot before recording into the fresh slot.
func TestWindowRotation(t *testing.T) {
	clk := &testClock{t: 1000}
	const window = 100
	w := NewWindowed(window, 2, clk.now)

	w.Record(10)
	w.Record(20)
	if snap := w.Snapshot(); snap.Count != 2 {
		t.Fatalf("live slot count %d, want 2", snap.Count)
	}

	// Cross one deadline: the two observations retire into the ring and
	// remain visible in the rolling view alongside the new live slot.
	clk.advance(window)
	w.Snapshot() // forces the rotation
	w.Record(30)
	snap := w.Snapshot()
	if snap.Count != 3 || snap.Min != 10 || snap.Max != 30 {
		t.Fatalf("after 1 rotation: count=%d min=%d max=%d, want 3/10/30", snap.Count, snap.Min, snap.Max)
	}

	// Cross into the fourth slot: with 2 ring slots, the first window's
	// observations are evicted from the rolling view...
	clk.advance(2*window + window/2)
	w.Snapshot()
	w.Record(40)
	snap = w.Snapshot()
	if snap.Count != 2 || snap.Min != 30 || snap.Max != 40 {
		t.Fatalf("after eviction: count=%d min=%d max=%d, want 2/30/40", snap.Count, snap.Min, snap.Max)
	}
	// ...but stay in the cumulative view, which is monotonic.
	cum := w.Cumulative()
	if cum.Count != 4 || cum.Sum != 10+20+30+40 {
		t.Fatalf("cumulative count=%d sum=%d, want 4/100", cum.Count, cum.Sum)
	}
}

// TestWindowIdleGap pins the skip-ahead: a gap far longer than the ring
// clears the rolling view in one step instead of retiring thousands of
// empty slots, and the cumulative view still retains everything.
func TestWindowIdleGap(t *testing.T) {
	clk := &testClock{}
	const window = 100
	w := NewWindowed(window, 4, clk.now)
	w.Record(5)
	clk.advance(1000 * window)
	if snap := w.Snapshot(); snap.Count != 0 {
		t.Fatalf("rolling view after long idle gap: count %d, want 0", snap.Count)
	}
	if cum := w.Cumulative(); cum.Count != 1 || cum.Sum != 5 {
		t.Fatalf("cumulative after gap: count=%d sum=%d, want 1/5", cum.Count, cum.Sum)
	}
	// The series keeps working after the skip.
	w.Record(7)
	if snap := w.Snapshot(); snap.Count != 1 || snap.Max != 7 {
		t.Fatalf("record after gap: count=%d max=%d, want 1/7", snap.Count, snap.Max)
	}
}

// TestWindowDefaults pins the zero-config constructor arguments.
func TestWindowDefaults(t *testing.T) {
	clk := &testClock{}
	w := NewWindowed(0, 0, clk.now)
	if w.windowNanos != 60e9 {
		t.Fatalf("default window %d, want 60e9", w.windowNanos)
	}
	if cap(w.ring) != 1 {
		t.Fatalf("default ring capacity %d, want 1", cap(w.ring))
	}
}
