package telemetry

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"maskedspgemm/internal/exec"
	"maskedspgemm/internal/obs"
)

// This file renders the registry as Prometheus text exposition (format
// 0.0.4) and provides the minimal parser the smoke gate scrapes it back
// with. Only stdlib; summary-type metrics carry the windowed quantiles
// while _sum/_count stay cumulative (monotonic), which is the summary
// contract scrapers expect.

// quantiles reported for every latency summary.
var summaryQuantiles = []float64{0.5, 0.9, 0.99}

// RequiredSeries are the metric families every healthy telemetry
// endpoint must expose — the smoke gate fails the build if a scrape is
// missing any of them.
var RequiredSeries = []string{
	"spgemm_run_latency_seconds",
	"spgemm_phase_latency_seconds",
	"spgemm_runs_total",
	"spgemm_tiles_total",
	"spgemm_pool_hit_rate",
	"spgemm_pool_hits_total",
	"spgemm_plan_cache_hits_total",
	"spgemm_retry_attempts_total",
	"spgemm_waves_total",
	"spgemm_wave_barriers_total",
	"spgemm_flightrec_events_total",
}

// metricsWriter accumulates exposition lines, tracking the first write
// error so call sites stay linear.
type metricsWriter struct {
	w   io.Writer
	err error
}

func (m *metricsWriter) printf(format string, args ...any) {
	if m.err != nil {
		return
	}
	_, m.err = fmt.Fprintf(m.w, format, args...)
}

func (m *metricsWriter) header(name, help, typ string) {
	m.printf("# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
}

// summary emits one summary family: windowed quantiles, cumulative
// sum/count. labels is the pre-rendered label set without braces (""
// for none).
func (m *metricsWriter) summary(name, labels string, window, cum HistSnapshot) {
	sep := ""
	if labels != "" {
		sep = ","
	}
	for _, q := range summaryQuantiles {
		m.printf("%s{%s%squantile=\"%g\"} %s\n",
			name, labels, sep, q, formatSeconds(window.Quantile(q)))
	}
	suffix := ""
	if labels != "" {
		suffix = "{" + labels + "}"
	}
	m.printf("%s_sum%s %s\n", name, suffix, formatSeconds(cum.Sum))
	m.printf("%s_count%s %d\n", name, suffix, cum.Count)
}

// formatSeconds renders nanoseconds as seconds with full float64
// precision ('g' keeps small latencies legible).
func formatSeconds(ns int64) string {
	return strconv.FormatFloat(float64(ns)/1e9, 'g', -1, 64)
}

// WriteMetrics renders the registry (latency summaries, recorder
// counters, pool gauges, flight-recorder counters) as Prometheus text
// exposition. Counter values come from the most recently attached
// recorder's cumulative Stats; pool values prefer live engine counters
// over the recorder's folded per-run deltas when engines are attached.
func (t *Telemetry) WriteMetrics(w io.Writer) error {
	if t == nil {
		return nil
	}
	m := &metricsWriter{w: w}

	m.header("spgemm_run_latency_seconds",
		"End-to-end multiply latency (quantiles over the rolling window).", "summary")
	m.summary("spgemm_run_latency_seconds", "", t.RunWindow(), t.RunCumulative())

	m.header("spgemm_phase_latency_seconds",
		"Per-phase span latency (quantiles over the rolling window).", "summary")
	for p := obs.Phase(0); int(p) < obs.PhaseCount; p++ {
		labels := fmt.Sprintf("phase=%q", p.String())
		m.summary("spgemm_phase_latency_seconds", labels, t.PhaseWindow(p), t.PhaseCumulative(p))
	}

	stats := t.aggregateStats()
	m.header("spgemm_runs_total", "Completed kernel runs.", "counter")
	m.printf("spgemm_runs_total %d\n", stats.Runs)

	counter := func(name, help string, v int64) {
		m.header(name, help, "counter")
		m.printf("%s %d\n", name, v)
	}
	counter("spgemm_tiles_total", "Tiles executed.", stats.Totals.Tiles)
	counter("spgemm_rows_total", "Output rows iterated.", stats.Totals.Rows)
	counter("spgemm_flops_total", "Estimated flop volume processed.", stats.Totals.Flops)
	counter("spgemm_gathered_total", "Output entries emitted.", stats.Totals.Gathered)
	counter("spgemm_accum_marker_clears_total", "Accumulator marker-overflow resets.", stats.Accum.MarkerClears)
	counter("spgemm_accum_table_grows_total", "Accumulator hash-table growths.", stats.Accum.TableGrows)
	counter("spgemm_accum_hash_probes_total", "Accumulator hash probes.", stats.Accum.HashProbes)
	counter("spgemm_accum_hash_collisions_total", "Accumulator hash collisions.", stats.Accum.HashCollisions)
	counter("spgemm_retry_attempts_total", "Retry-ladder execution attempts.", stats.Retry.Attempts)
	counter("spgemm_retry_retries_total", "Attempts after the first.", stats.Retry.Retries)
	counter("spgemm_retry_degradations_total", "Attempts on a narrowed execution path.", stats.Retry.Degradations)
	counter("spgemm_retry_failures_total", "Operations whose final attempt failed.", stats.Retry.Failures)
	counter("spgemm_retry_stalls_total", "Attempts failed by the stall watchdog.", stats.Retry.Stalls)
	counter("spgemm_recal_updates_total", "Online-kappa recalibrator updates.", stats.Recal.Updates)
	counter("spgemm_recal_explorations_total", "Recalibrator exploration steps.", stats.Recal.Explorations)
	counter("spgemm_recal_recenters_total", "Recalibrator recenters.", stats.Recal.Recenters)
	counter("spgemm_recal_snapbacks_total", "Recalibrator snapbacks to the static default.", stats.Recal.Snapbacks)
	counter("spgemm_wave_runs_total", "Wave-scheduled (level-set) runs.", stats.Sched.WaveRuns)
	counter("spgemm_wave_levels_total", "Raw dependency levels before wave coarsening.", stats.Sched.Levels)
	counter("spgemm_waves_total", "Coarsened waves executed.", stats.Sched.Waves)
	counter("spgemm_serial_waves_total", "Waves the coarsener collapsed to a single tile.", stats.Sched.SerialWaves)
	counter("spgemm_wave_barriers_total", "Barrier arrivals (one per worker per crossed wave boundary).", stats.Sched.Barriers)

	m.header("spgemm_wave_barrier_wait_seconds_total",
		"Cumulative time workers spent parked at wave barriers.", "counter")
	m.printf("spgemm_wave_barrier_wait_seconds_total %s\n", formatSeconds(stats.Sched.BarrierWaitNs))

	m.header("spgemm_kappa_last", "Most recently applied kappa (0 when adaptive tuning is off).", "gauge")
	m.printf("spgemm_kappa_last %s\n", strconv.FormatFloat(stats.Recal.KappaLast, 'g', -1, 64))

	pool, idle := t.gatherPool(stats)
	counter("spgemm_pool_hits_total", "Workspace checkouts served from the pool.", pool.Hits)
	counter("spgemm_pool_misses_total", "Workspace checkouts that constructed fresh state.", pool.Misses)
	counter("spgemm_pool_steals_total", "Checkouts served by a larger size-class bucket.", pool.Steals)
	counter("spgemm_pool_resizes_total", "In-place workspace growths.", pool.Resizes)
	counter("spgemm_pool_evictions_total", "Hot-tier to overflow-tier demotions.", pool.Evictions)
	counter("spgemm_pool_quarantined_total", "Workspaces quarantined after a poisoned run.", pool.Quarantines)
	counter("spgemm_plan_cache_hits_total", "Plan-cache hits.", pool.PlanHits)
	counter("spgemm_plan_cache_misses_total", "Plan-cache misses.", pool.PlanMisses)

	m.header("spgemm_pool_hit_rate", "Fraction of workspace checkouts served without construction.", "gauge")
	m.printf("spgemm_pool_hit_rate %s\n", strconv.FormatFloat(pool.HitRate(), 'g', -1, 64))
	m.header("spgemm_pool_idle", "Workspaces currently idle in the hot tier.", "gauge")
	m.printf("spgemm_pool_idle %d\n", idle)

	counter("spgemm_flightrec_events_total", "Events appended to the flight recorder.", t.flight.Seq())
	counter("spgemm_flightrec_dropped_total", "Flight events overwritten before a dump.", t.flight.Dropped())
	counter("spgemm_flightrec_dumps_total", "Failure dumps written.", t.dumps.Load())

	return m.err
}

// gatherPool chooses the pool-counter source: live engine counters
// (summed over attached engines) when any engine is attached, else the
// recorder's folded per-run deltas.
func (t *Telemetry) gatherPool(stats obs.Stats) (exec.PoolStats, int) {
	engines := t.attachedEngines()
	if len(engines) == 0 {
		p := stats.Pool
		return exec.PoolStats{
			Hits: p.Hits, Misses: p.Misses, Steals: p.Steals,
			Resizes: p.Resizes, Evictions: p.Evictions,
			PlanHits: p.PlanHits, PlanMisses: p.PlanMisses,
			Quarantines: p.Quarantined,
		}, 0
	}
	var sum exec.PoolStats
	var idle int
	for _, e := range engines {
		s := e.Stats()
		sum.Hits += s.Hits
		sum.Misses += s.Misses
		sum.Steals += s.Steals
		sum.Resizes += s.Resizes
		sum.Evictions += s.Evictions
		sum.PlanHits += s.PlanHits
		sum.PlanMisses += s.PlanMisses
		sum.Quarantines += s.Quarantines
		idle += e.Idle()
	}
	return sum, idle
}

// Sample is one parsed exposition sample.
type Sample struct {
	// Name is the metric name (without the label set).
	Name string
	// Labels is the raw label block without braces ("" when absent),
	// with label pairs in source order.
	Labels string
	// Value is the sample value.
	Value float64
}

// ParseExposition parses Prometheus text format 0.0.4 far enough for
// the smoke gate: comment/HELP/TYPE lines are skipped, every sample
// line must split into name[{labels}] and a float value. Returns the
// samples in source order; malformed lines are errors, not skips, so
// format drift fails loudly.
func ParseExposition(r io.Reader) ([]Sample, error) {
	var out []Sample
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		var name, labels, rest string
		if i := strings.IndexByte(line, '{'); i >= 0 {
			j := strings.LastIndexByte(line, '}')
			if j < i {
				return nil, fmt.Errorf("telemetry: exposition line %d: unbalanced braces", lineNo)
			}
			name, labels, rest = line[:i], line[i+1:j], strings.TrimSpace(line[j+1:])
		} else {
			fields := strings.Fields(line)
			// name value [timestamp]
			if len(fields) != 2 && len(fields) != 3 {
				return nil, fmt.Errorf("telemetry: exposition line %d: want 'name value [timestamp]', got %q", lineNo, line)
			}
			name, rest = fields[0], fields[1]
		}
		if name == "" {
			return nil, fmt.Errorf("telemetry: exposition line %d: empty metric name", lineNo)
		}
		// rest may carry an optional timestamp; take the first field.
		valueField := strings.Fields(rest)
		if len(valueField) == 0 {
			return nil, fmt.Errorf("telemetry: exposition line %d: missing value", lineNo)
		}
		v, err := strconv.ParseFloat(valueField[0], 64)
		if err != nil {
			return nil, fmt.Errorf("telemetry: exposition line %d: bad value %q: %w", lineNo, valueField[0], err)
		}
		out = append(out, Sample{Name: name, Labels: labels, Value: v})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// FindSample returns the first sample matching name and containing
// every given label pair (rendered as key="value").
func FindSample(samples []Sample, name string, labelPairs ...string) (Sample, bool) {
	for _, s := range samples {
		if s.Name != name {
			continue
		}
		ok := true
		for _, lp := range labelPairs {
			if !strings.Contains(s.Labels, lp) {
				ok = false
				break
			}
		}
		if ok {
			return s, true
		}
	}
	return Sample{}, false
}

// MissingSeries reports which required families have no sample (base
// name or any _sum/_count derivative) in the parse.
func MissingSeries(samples []Sample, required []string) []string {
	have := make(map[string]bool, len(samples))
	for _, s := range samples {
		have[s.Name] = true
		have[strings.TrimSuffix(strings.TrimSuffix(s.Name, "_sum"), "_count")] = true
	}
	var missing []string
	for _, name := range required {
		if !have[name] {
			missing = append(missing, name)
		}
	}
	sort.Strings(missing)
	return missing
}
