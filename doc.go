// Package maskedspgemm reproduces "To tile or not to tile, that is the
// question" (Haan, Popovici, Sen, Iancu, Cheung; IPDPSW 2024): a
// performance study of the masked sparse matrix-matrix multiplication
// kernel C = M ⊙ (A × B) along three design dimensions — tiling and
// scheduling, iteration space, and sparse accumulator design.
//
// The public API lives in maskedspgemm/spgemm. The benchmark functions
// in this package regenerate the paper's tables and figures; see
// bench_test.go, cmd/spgemm-bench, DESIGN.md and EXPERIMENTS.md.
package maskedspgemm
